package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"sketchml/internal/obs"
)

// The service tests drive the control plane the way an operator does:
// through the HTTP API, plus Drain() standing in for SIGTERM. Jobs are
// tiny synthetic runs so a full lifecycle completes in well under a
// second; the "long" variants are sized to still be running when the test
// cancels or drains them.

func testLimits() Limits {
	return Limits{
		MaxConcurrent: 2,
		MaxQueue:      4,
		RetryBackoff:  10 * time.Millisecond,
	}
}

func newTestServer(t *testing.T, lim Limits, dir string) (*Server, *httptest.Server) {
	t.Helper()
	store, err := NewCheckpointStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lim, store, obs.NewRegistry())
	ts := httptest.NewServer(Handler(srv))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// quickSpec completes in a few hundred milliseconds.
func quickSpec(name string) string {
	return fmt.Sprintf(`{
		"name": %q, "dataset": "synthetic",
		"instances": 300, "dim": 600, "avg_nnz": 8,
		"model": "LR", "codec": "adam",
		"workers": 2, "epochs": 2, "seed": 7
	}`, name)
}

// longSpec runs long enough (tens of epochs) to be observed running.
func longSpec(name string) string {
	return fmt.Sprintf(`{
		"name": %q, "dataset": "synthetic",
		"instances": 2000, "dim": 4000, "avg_nnz": 20,
		"model": "LR", "codec": "sketchml",
		"workers": 2, "epochs": 50, "seed": 7
	}`, name)
}

func submit(t *testing.T, ts *httptest.Server, body string) (Status, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, pred func(Status) bool, what string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var st Status
	for time.Now().Before(deadline) {
		st = getStatus(t, ts, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s; last status %+v", id, what, st)
	return st
}

func TestJobRunsToCompletion(t *testing.T) {
	_, ts := newTestServer(t, testLimits(), "")
	st, resp := submit(t, ts, quickSpec("quick"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.State != StatePending && st.State != StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.terminal() }, "a terminal state")
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Detail)
	}
	if final.Rounds < 2 {
		t.Fatalf("done job completed %d rounds", final.Rounds)
	}
	if final.FinalLoss <= 0 {
		t.Fatalf("done job has final loss %v", final.FinalLoss)
	}

	// The per-job metrics view exposes the trainer's counters.
	resp2, err := http.Get(ts.URL + "/jobs/" + st.ID + "?metrics=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var withMetrics struct {
		Status
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&withMetrics); err != nil {
		t.Fatal(err)
	}
	if len(withMetrics.Metrics) == 0 {
		t.Fatal("metrics view is empty after a completed run")
	}

	// And the list endpoint knows the job.
	resp3, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, testLimits(), "")
	st, _ := submit(t, ts, longSpec("tocancel"))
	waitState(t, ts, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	final := waitState(t, ts, st.ID, func(s Status) bool { return s.State.terminal() }, "a terminal state")
	if final.State != StateCancelled {
		t.Fatalf("cancelled job finished %s (%s)", final.State, final.Detail)
	}
	if final.Detail != "cancelled via DELETE" {
		t.Fatalf("cancel detail %q", final.Detail)
	}
	// No RoundDeadline: the bound is the round in flight plus teardown.
	if d := time.Since(t0); d > 30*time.Second {
		t.Fatalf("cancel took %v", d)
	}

	// DELETE on a terminal job stays a 202 no-op, not an error.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second DELETE: %d", resp2.StatusCode)
	}
}

func TestDrainCheckpointsRunningJobAndRefusesNewOnes(t *testing.T) {
	srv, ts := newTestServer(t, testLimits(), "")
	st, _ := submit(t, ts, longSpec("todrain"))
	waitState(t, ts, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	srv.Drain(ctx)

	final := getStatus(t, ts, st.ID)
	if final.State != StateCancelled || !final.Drained {
		t.Fatalf("drained job: state %s drained %v (%s)", final.State, final.Drained, final.Detail)
	}
	if final.Rounds < 1 {
		t.Fatal("drained job completed no rounds")
	}
	cp, err := srv.store.Load("todrain")
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("drain left no checkpoint")
	}
	if cp.Rounds != final.Rounds {
		t.Fatalf("checkpoint at round %d, job stopped at %d", cp.Rounds, final.Rounds)
	}

	// Readiness flipped and submits are refused.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, quickSpec("late")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: %d", resp.StatusCode)
	}
	// Liveness stays green: draining is healthy, just not ready.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %d", resp2.StatusCode)
	}
}

// TestDrainedJobResumesInNewServer is the crash-restart story: drain a
// running job (checkpoint lands on disk), start a fresh server over the
// same checkpoint directory, resubmit the same name, and the job must
// resume from the checkpoint — not start over — and run to done.
func TestDrainedJobResumesInNewServer(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newTestServer(t, testLimits(), dir)
	st, _ := submit(t, ts1, longSpec("migrant"))
	waitState(t, ts1, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	srv1.Drain(ctx)
	drained := getStatus(t, ts1, st.ID)
	if drained.State != StateCancelled || !drained.Drained {
		t.Fatalf("drain outcome: %+v", drained)
	}
	ts1.Close()
	srv1.Close()

	_, ts2 := newTestServer(t, testLimits(), dir)
	st2, resp := submit(t, ts2, longSpec("migrant"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d", resp.StatusCode)
	}
	final := waitState(t, ts2, st2.ID, func(s Status) bool { return s.State.terminal() }, "a terminal state")
	if final.State != StateDone {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Detail)
	}
	if !final.Resumed {
		t.Fatal("resubmitted job did not resume from the checkpoint")
	}
	if final.Rounds <= drained.Rounds {
		t.Fatalf("resumed job stopped at round %d, drain was already at %d", final.Rounds, drained.Rounds)
	}
}

func TestQueueBoundConflictAndNotFound(t *testing.T) {
	lim := testLimits()
	lim.MaxConcurrent = 1
	lim.MaxQueue = 1
	_, ts := newTestServer(t, lim, "")

	// Occupy the single runner, then the single queue slot.
	run, _ := submit(t, ts, longSpec("occupant"))
	waitState(t, ts, run.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	if _, resp := submit(t, ts, quickSpec("queued")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue slot submit: %d", resp.StatusCode)
	}

	// Queue full → 429.
	if _, resp := submit(t, ts, quickSpec("overflow")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	// Live-name conflict → 409.
	if _, resp := submit(t, ts, longSpec("occupant")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflict submit: %d, want 409", resp.StatusCode)
	}
	// Unknown job → 404 on both GET and DELETE.
	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d", resp.StatusCode)
	}
}

func TestBadSpecRejected(t *testing.T) {
	_, ts := newTestServer(t, testLimits(), "")
	bad := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{{{`},
		{"unknown field", `{"name":"a","dataset":"kdd10","model":"LR","codec":"adam","workers":1,"epochs":1,"evil":true}`},
		{"trailing data", quickSpec("a") + `{"second":"doc"}`},
		{"path dataset", `{"name":"a","dataset":"/etc/passwd","model":"LR","codec":"adam","workers":1,"epochs":1}`},
		{"traversal name", `{"name":"..","dataset":"kdd10","model":"LR","codec":"adam","workers":1,"epochs":1}`},
		{"workers over budget", `{"name":"a","dataset":"kdd10","model":"LR","codec":"adam","workers":9999,"epochs":1}`},
		{"unknown codec", `{"name":"a","dataset":"kdd10","model":"LR","codec":"gzip","workers":1,"epochs":1}`},
		{"oversize body", `{"name":"a","dataset":"kdd10","model":"LR","codec":"adam","workers":1,"epochs":1,` +
			`"pad":"` + strings.Repeat("x", 80<<10) + `"}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s: %d, want 400", tc.name, resp.StatusCode)
			}
		})
	}
	// None of those registered a job.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("bad specs registered jobs: %+v", list)
	}
}

// TestPendingJobCancelledBeforeRun pins the queue-to-cancelled shortcut: a
// job deleted while waiting for a runner slot must never start training.
func TestPendingJobCancelledBeforeRun(t *testing.T) {
	lim := testLimits()
	lim.MaxConcurrent = 1
	lim.MaxQueue = 2
	_, ts := newTestServer(t, lim, "")
	run, _ := submit(t, ts, longSpec("blocker"))
	waitState(t, ts, run.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	queued, _ := submit(t, ts, quickSpec("victim"))
	if st := getStatus(t, ts, queued.ID); st.State != StatePending {
		t.Fatalf("queued job state %s", st.State)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, ts, queued.ID, func(s Status) bool { return s.State.terminal() }, "a terminal state")
	if st.State != StateCancelled {
		t.Fatalf("pending job finished %s", st.State)
	}
	if st.Started != "" {
		t.Fatal("cancelled pending job reports a start time — it ran")
	}
}

// TestServerCloseLeaksNothing runs a full lifecycle plus a hard close and
// requires the goroutine count to return to its baseline: runners, job
// attempts, workers, and watchers must all join.
func TestServerCloseLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, ts := newTestServer(t, testLimits(), "")
	st, _ := submit(t, ts, longSpec("leakcheck"))
	waitState(t, ts, st.ID, func(s Status) bool { return s.State == StateRunning }, "running")
	ts.Close()
	srv.Close()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak after Close: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}
