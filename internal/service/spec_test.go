package service

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLimitsDefaults(t *testing.T) {
	l := Limits{}.fill()
	if l.MaxWorkers != 16 || l.MaxEpochs != 50 || l.MaxQueue != 32 ||
		l.MaxConcurrent != 2 || l.MaxWallClock != 10*time.Minute ||
		l.MaxBodyBytes != 64<<10 || l.RetryBudget != 2 || l.RetryBackoff != time.Second {
		t.Fatalf("defaults: %+v", l)
	}
	if got := (Limits{RetryBudget: -1}).fill().RetryBudget; got != 0 {
		t.Fatalf("negative RetryBudget filled to %d, want 0 (retries disabled)", got)
	}
}

func TestSpecValidateNormalizes(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"adam","workers":2,"epochs":1}`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topology != "driver" {
		t.Fatalf("empty topology normalized to %q", spec.Topology)
	}
	if spec.DeadlineSec != int((10*time.Minute)/time.Second) {
		t.Fatalf("zero deadline normalized to %d", spec.DeadlineSec)
	}
}

func TestSpecValidateRejectsFilePaths(t *testing.T) {
	for _, ds := range []string{"/etc/passwd", "../data.libsvm", "C:\\data", "file.libsvm"} {
		spec := JobSpec{Name: "n", Dataset: ds, Model: "LR", Codec: "adam", Workers: 1, Epochs: 1}
		err := spec.Validate(Limits{})
		if err == nil {
			t.Fatalf("dataset %q accepted; the service must not read server files", ds)
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Fatalf("dataset %q: error does not wrap ErrBadSpec: %v", ds, err)
		}
	}
}

func TestSpecValidateGather(t *testing.T) {
	mk := func(extra string) []byte {
		return []byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"sketchml","workers":4,"epochs":1` + extra + `}`)
	}
	cases := []struct {
		name string
		body []byte
		want string // "" = accept
	}{
		{name: "default star", body: mk(``)},
		{name: "explicit star", body: mk(`,"gather":"star"`)},
		{name: "tree on driver", body: mk(`,"gather":"tree"`)},
		{name: "ring on driver", body: mk(`,"gather":"ring"`)},
		{name: "unknown shape", body: mk(`,"gather":"mesh"`), want: "unknown topology"},
		{name: "tree on ps", body: mk(`,"gather":"tree","topology":"ps","servers":2`), want: "requires topology=driver"},
		{name: "ring on ssp", body: mk(`,"gather":"ring","topology":"ssp"`), want: "requires topology=driver"},
		{name: "tree with unmergeable codec", body: []byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"onebit","workers":4,"epochs":1,"gather":"tree"}`),
			want: "mergeable codec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseJobSpec(tc.body, Limits{})
			if tc.want == "" {
				if err != nil {
					t.Fatalf("spec rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("spec accepted: %+v", spec)
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error does not wrap ErrBadSpec: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDecodeJobSpecBodyBound(t *testing.T) {
	lim := Limits{MaxBodyBytes: 256}
	big := `{"name":"n","dataset":"kdd10","model":"LR","codec":"adam","workers":1,"epochs":1,"pad":"` +
		strings.Repeat("x", 1024) + `"}`
	_, err := DecodeJobSpec(strings.NewReader(big), lim.MaxBodyBytes, lim)
	if err == nil || !errors.Is(err, ErrBadSpec) {
		t.Fatalf("oversize body: %v", err)
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize body error %q does not mention the bound", err)
	}
}

// FuzzJobSpecDecode feeds arbitrary bytes to the control-API request
// decoder: it must never panic, must bound what it buffers, and anything
// it accepts must satisfy its own validator (names usable as filenames,
// budgets within limits).
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"adam","workers":2,"epochs":1}`))
	f.Add([]byte(`{"name":"n","dataset":"synthetic","instances":100,"dim":50,"avg_nnz":5,"model":"SVM","codec":"sketchml","workers":1,"epochs":1,"topology":"ssp","staleness":3}`))
	f.Add([]byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"sketchml","workers":4,"epochs":1,"gather":"tree"}`))
	f.Add([]byte(`{"name":"../evil","dataset":"kdd10"}`))
	f.Add([]byte(`{"name":"n","dataset":"kdd10","model":"LR","codec":"adam","workers":-1,"epochs":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(strings.NewReader(string(data)), 4096, Limits{})
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("decode error outside the ErrBadSpec family: %v", err)
			}
			if spec != nil {
				t.Fatal("error with non-nil spec")
			}
			return
		}
		// Whatever survived must be admissible: safe name, budgets in range.
		if !nameOK(spec.Name) {
			t.Fatalf("accepted spec has unsafe name %q", spec.Name)
		}
		lim := Limits{}.fill()
		if spec.Workers < 1 || spec.Workers > lim.MaxWorkers {
			t.Fatalf("accepted spec has workers %d", spec.Workers)
		}
		if spec.Epochs < 1 || spec.Epochs > lim.MaxEpochs {
			t.Fatalf("accepted spec has epochs %d", spec.Epochs)
		}
		switch spec.Topology {
		case "driver", "ps", "ssp":
		default:
			t.Fatalf("accepted spec has topology %q", spec.Topology)
		}
	})
}
