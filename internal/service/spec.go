// Package service is the long-lived training control plane: it hosts many
// concurrent training jobs over the trainer's three topologies, exposes a
// JSON/HTTP lifecycle API (submit, inspect, cancel), drains gracefully on
// SIGTERM — running jobs finish their round in flight, checkpoint, and the
// process exits cleanly — and resumes crashed or drained jobs from
// crash-safe checkpoints instead of restarting them.
//
// The design leans on the properties the rest of the repository already
// guarantees: trainer runs stop within one RoundDeadline of cancellation
// (RunContext), stop at round boundaries on drain (Config.Drain), and
// restore bit-exactly from checksummed checkpoints (Config.Resume), so the
// control plane is orchestration only — state machines, budgets, and
// supervision — with no training-protocol logic of its own.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/model"
	"sketchml/internal/optim"
	"sketchml/internal/trainer"
)

// Limits are the service-wide resource budgets every submitted job is
// validated against. The zero value of any field selects its default.
type Limits struct {
	// MaxWorkers caps JobSpec.Workers (default 16).
	MaxWorkers int
	// MaxEpochs caps JobSpec.Epochs (default 50).
	MaxEpochs int
	// MaxQueue bounds the number of jobs waiting to run (default 32).
	MaxQueue int
	// MaxConcurrent is the number of jobs running at once (default 2).
	MaxConcurrent int
	// MaxWallClock caps a single job's wall-clock budget; jobs may request
	// less via JobSpec.DeadlineSec but never more (default 10 minutes).
	MaxWallClock time.Duration
	// MaxBodyBytes bounds a control-API request body (default 64 KiB).
	MaxBodyBytes int64
	// RetryBudget is how many times the supervisor restarts a failed job
	// before declaring it failed for good (default 2; negative disables
	// retries).
	RetryBudget int
	// RetryBackoff is the supervisor's initial restart backoff, doubled per
	// consecutive failure (default 1s).
	RetryBackoff time.Duration
}

func (l Limits) fill() Limits {
	if l.MaxWorkers <= 0 {
		l.MaxWorkers = 16
	}
	if l.MaxEpochs <= 0 {
		l.MaxEpochs = 50
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = 32
	}
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = 2
	}
	if l.MaxWallClock <= 0 {
		l.MaxWallClock = 10 * time.Minute
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 64 << 10
	}
	if l.RetryBudget == 0 {
		l.RetryBudget = 2
	}
	if l.RetryBudget < 0 {
		l.RetryBudget = 0
	}
	if l.RetryBackoff <= 0 {
		l.RetryBackoff = time.Second
	}
	return l
}

// JobSpec is the wire form of one training job, submitted as the JSON body
// of POST /jobs. Every field is validated against the service Limits before
// the job is admitted; unknown fields are rejected so a typo cannot
// silently select a default.
type JobSpec struct {
	// Name identifies the job and keys its checkpoints: resubmitting a spec
	// under the name of a drained or failed job resumes from that job's
	// latest checkpoint. Restricted to [A-Za-z0-9._-], max 64 chars.
	Name string `json:"name"`

	// Dataset selects a deterministic synthetic dataset: kdd10, kdd12, ctr,
	// or synthetic (custom geometry via Instances/Dim/AvgNNZ). The service
	// deliberately does not accept file paths — the control API is a network
	// surface, and a path here would read arbitrary server files.
	Dataset   string `json:"dataset"`
	Instances int    `json:"instances,omitempty"`
	Dim       uint64 `json:"dim,omitempty"`
	AvgNNZ    int    `json:"avg_nnz,omitempty"`

	Model string `json:"model"` // LR | SVM | Linear
	Codec string `json:"codec"` // sketchml | adam | adam32 | zipml8 | zipml16 | key | keyquan | onebit | topk | topk-ef

	Workers       int     `json:"workers"`
	Epochs        int     `json:"epochs"`
	BatchFraction float64 `json:"batch_fraction,omitempty"`
	LR            float64 `json:"lr,omitempty"`
	Lambda        float64 `json:"lambda,omitempty"`
	Seed          int64   `json:"seed,omitempty"`

	// Topology selects the aggregation protocol: driver (default), ps, ssp.
	Topology  string `json:"topology,omitempty"`
	Servers   int    `json:"servers,omitempty"`   // topology=ps
	Staleness int    `json:"staleness,omitempty"` // topology=ssp
	// Gather selects the driver protocol's gather shape: star (default),
	// tree, or ring. tree/ring require a mergeable codec and topology=driver.
	Gather string `json:"gather,omitempty"`

	// RoundDeadlineMs enables the trainer's tolerant mode (quorum gather,
	// strike-based abort) and bounds every blocking receive; it is also the
	// cancellation response bound. 0 keeps strict fail-stop mode.
	RoundDeadlineMs int `json:"round_deadline_ms,omitempty"`
	// DeadlineSec is the job's wall-clock budget; 0 uses the service
	// maximum. The job fails (cancelled by deadline) when it expires.
	DeadlineSec int `json:"deadline_sec,omitempty"`
	// CheckpointEvery is the epoch period of periodic checkpoints
	// (default 1 = every epoch boundary).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// ErrBadSpec classifies every spec decode/validation failure, so the HTTP
// layer can map the whole family to 400 with errors.Is.
var ErrBadSpec = errors.New("invalid job spec")

// DecodeJobSpec reads and validates a JSON job spec from r, reading at most
// maxBytes (the caller typically also installs http.MaxBytesReader so the
// connection is torn down on abuse). Unknown fields, trailing garbage,
// oversized bodies, and budget violations are all ErrBadSpec.
func DecodeJobSpec(r io.Reader, maxBytes int64, lim Limits) (*JobSpec, error) {
	if maxBytes <= 0 {
		maxBytes = lim.fill().MaxBodyBytes
	}
	// Read through a hard cap: the +1 makes "exactly at the cap" and "over
	// the cap" distinguishable without ever buffering more than maxBytes+1.
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("%w: read body: %v", ErrBadSpec, err)
	}
	if int64(len(data)) > maxBytes {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", ErrBadSpec, maxBytes)
	}
	return ParseJobSpec(data, lim)
}

// ParseJobSpec decodes and validates a JSON job spec held in memory.
func ParseJobSpec(data []byte, lim Limits) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// A second Decode must see EOF: two JSON documents in one body is a
	// smuggling attempt or a client bug, not a spec.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after spec", ErrBadSpec)
	}
	if err := spec.Validate(lim); err != nil {
		return nil, err
	}
	return &spec, nil
}

// nameOK reports whether a job name is safe to use as a map key and a
// checkpoint filename (no separators, no traversal, bounded length).
func nameOK(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	// "." and ".." are valid character-wise but are path navigation.
	return name != "." && name != ".."
}

// Validate checks the spec against the service budgets and normalizes
// defaults in place. Every failure wraps ErrBadSpec.
func (s *JobSpec) Validate(lim Limits) error {
	lim = lim.fill()
	if !nameOK(s.Name) {
		return fmt.Errorf("%w: name %q must be 1-64 chars of [A-Za-z0-9._-]", ErrBadSpec, s.Name)
	}
	switch s.Dataset {
	case "kdd10", "kdd12", "ctr":
	case "synthetic":
		if s.Instances < 8 || s.Instances > 1_000_000 {
			return fmt.Errorf("%w: synthetic instances %d out of [8, 1e6]", ErrBadSpec, s.Instances)
		}
		if s.Dim < 2 || s.Dim > 1<<24 {
			return fmt.Errorf("%w: synthetic dim %d out of [2, 2^24]", ErrBadSpec, s.Dim)
		}
		if s.AvgNNZ < 1 || uint64(s.AvgNNZ) > s.Dim {
			return fmt.Errorf("%w: synthetic avg_nnz %d out of [1, dim]", ErrBadSpec, s.AvgNNZ)
		}
	default:
		return fmt.Errorf("%w: unknown dataset %q (kdd10|kdd12|ctr|synthetic)", ErrBadSpec, s.Dataset)
	}
	if _, err := model.ByName(s.Model); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if _, err := newCodecFactory(s.Codec); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if s.Workers < 1 || s.Workers > lim.MaxWorkers {
		return fmt.Errorf("%w: workers %d out of [1, %d]", ErrBadSpec, s.Workers, lim.MaxWorkers)
	}
	if s.Epochs < 1 || s.Epochs > lim.MaxEpochs {
		return fmt.Errorf("%w: epochs %d out of [1, %d]", ErrBadSpec, s.Epochs, lim.MaxEpochs)
	}
	if s.BatchFraction < 0 || s.BatchFraction > 1 {
		return fmt.Errorf("%w: batch_fraction %v out of [0, 1]", ErrBadSpec, s.BatchFraction)
	}
	if s.LR < 0 || s.Lambda < 0 {
		return fmt.Errorf("%w: lr and lambda must be non-negative", ErrBadSpec)
	}
	switch s.Topology {
	case "":
		s.Topology = "driver"
	case "driver", "ps", "ssp":
	default:
		return fmt.Errorf("%w: unknown topology %q (driver|ps|ssp)", ErrBadSpec, s.Topology)
	}
	if s.Servers < 0 || s.Servers > lim.MaxWorkers {
		return fmt.Errorf("%w: servers %d out of [0, %d]", ErrBadSpec, s.Servers, lim.MaxWorkers)
	}
	if s.Staleness < 0 || s.Staleness > 1000 {
		return fmt.Errorf("%w: staleness %d out of [0, 1000]", ErrBadSpec, s.Staleness)
	}
	gather, err := cluster.ParseTopology(s.Gather)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if gather != cluster.TopologyStar {
		if s.Topology != "driver" {
			return fmt.Errorf("%w: gather %q requires topology=driver (got %q)", ErrBadSpec, s.Gather, s.Topology)
		}
		// Reject unmergeable codecs at submit time — the trainer would reject
		// them too, but only after the job is admitted and scheduled.
		if probe, _ := newCodecFactory(s.Codec); probe != nil {
			if _, ok := probe().(codec.Merger); !ok {
				return fmt.Errorf("%w: gather %q requires a mergeable codec, %s is not", ErrBadSpec, s.Gather, s.Codec)
			}
		}
	}
	if s.RoundDeadlineMs < 0 || s.RoundDeadlineMs > 600_000 {
		return fmt.Errorf("%w: round_deadline_ms %d out of [0, 600000]", ErrBadSpec, s.RoundDeadlineMs)
	}
	maxSec := int(lim.MaxWallClock / time.Second)
	if s.DeadlineSec < 0 || s.DeadlineSec > maxSec {
		return fmt.Errorf("%w: deadline_sec %d out of [0, %d]", ErrBadSpec, s.DeadlineSec, maxSec)
	}
	if s.DeadlineSec == 0 {
		s.DeadlineSec = maxSec
	}
	if s.CheckpointEvery < 0 || s.CheckpointEvery > lim.MaxEpochs {
		return fmt.Errorf("%w: checkpoint_every %d out of [0, %d]", ErrBadSpec, s.CheckpointEvery, lim.MaxEpochs)
	}
	return nil
}

// newCodecFactory maps a codec name to a per-party constructor (stateful
// codecs such as topk-ef keep per-sender residuals, so every party needs
// its own instance). The name is validated by constructing one instance
// eagerly; the returned factory then cannot fail for the same inputs, and
// falls back to that validated instance if construction ever does.
func newCodecFactory(name string) (func() codec.Codec, error) {
	build := func() (codec.Codec, error) {
		opts := codec.DefaultOptions()
		switch name {
		case "sketchml":
			return codec.NewSketchML(opts)
		case "adam":
			return &codec.Raw{}, nil
		case "adam32":
			return &codec.Raw{Float32: true}, nil
		case "zipml8":
			return &codec.ZipML{Bits: 8}, nil
		case "zipml16":
			return &codec.ZipML{Bits: 16}, nil
		case "key":
			opts.Quantize, opts.MinMax = false, false
			return codec.NewSketchML(opts)
		case "keyquan":
			opts.MinMax = false
			return codec.NewSketchML(opts)
		case "onebit":
			return &codec.OneBit{}, nil
		case "topk":
			return &codec.TopK{Fraction: 0.1}, nil
		case "topk-ef":
			return codec.NewErrorFeedback(&codec.TopK{Fraction: 0.1}), nil
		}
		return nil, fmt.Errorf("unknown codec %q", name)
	}
	probe, err := build()
	if err != nil {
		return nil, err
	}
	return func() codec.Codec {
		c, err := build()
		if err != nil {
			return probe // unreachable post-validation; shared fallback beats a nil codec
		}
		return c
	}, nil
}

// buildDataset materializes the spec's deterministic dataset and splits it
// into train/test exactly as cmd/sketchml does.
func (s *JobSpec) buildDataset() (train, test *dataset.Dataset, err error) {
	var ds *dataset.Dataset
	switch s.Dataset {
	case "kdd10":
		ds = dataset.KDD10Like(s.Seed)
	case "kdd12":
		ds = dataset.KDD12Like(s.Seed)
	case "ctr":
		ds = dataset.CTRLike(s.Seed)
	case "synthetic":
		task := dataset.Classification
		if s.Model == "Linear" {
			task = dataset.Regression
		}
		ds, err = dataset.Generate(dataset.SyntheticConfig{
			N: s.Instances, Dim: s.Dim, AvgNNZ: s.AvgNNZ,
			Task: task, NoiseStd: 0.5, Seed: s.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("%w: unknown dataset %q", ErrBadSpec, s.Dataset)
	}
	train, test = ds.Split(0.75, s.Seed)
	return train, test, nil
}

// buildConfig assembles the trainer configuration for one run attempt. The
// caller wires the lifecycle hooks (Drain, OnCheckpoint, Resume, Metrics)
// afterwards — they belong to the job, not the spec.
func (s *JobSpec) buildConfig() (trainer.Config, error) {
	mdl, err := model.ByName(s.Model)
	if err != nil {
		return trainer.Config{}, err
	}
	factory, err := newCodecFactory(s.Codec)
	if err != nil {
		return trainer.Config{}, err
	}
	lr := s.LR
	if lr == 0 {
		lr = 0.1
	}
	gather, err := cluster.ParseTopology(s.Gather)
	if err != nil {
		return trainer.Config{}, err
	}
	return trainer.Config{
		Topology:        gather,
		Model:           mdl,
		CodecFactory:    factory,
		Optimizer:       func(dim uint64) optim.Optimizer { return optim.NewAdam(lr, dim) },
		Workers:         s.Workers,
		BatchFraction:   s.BatchFraction,
		Epochs:          s.Epochs,
		Lambda:          s.Lambda,
		Seed:            s.Seed,
		RoundDeadline:   time.Duration(s.RoundDeadlineMs) * time.Millisecond,
		CheckpointEvery: s.CheckpointEvery,
	}, nil
}
