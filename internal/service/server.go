package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sketchml/internal/cluster"
	"sketchml/internal/obs"
	"sketchml/internal/trainer"
)

// Control-plane error classes the HTTP layer maps onto status codes.
var (
	// ErrQueueFull rejects a submit when the bounded job queue is at
	// capacity (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submits while the service drains (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrConflict rejects a submit whose name collides with a live job
	// (409). Terminal jobs do not conflict: resubmitting a drained or
	// failed name is exactly how a job resumes.
	ErrConflict = errors.New("service: a live job already holds this name")
	// ErrNotFound is the unknown-job-ID error (404).
	ErrNotFound = errors.New("service: no such job")

	// errJobStopped marks a run attempt that never started because the job
	// reached a terminal state while queued.
	errJobStopped = errors.New("service: job stopped before the attempt started")
)

// Server hosts training jobs: a bounded queue feeds MaxConcurrent runner
// goroutines; each runner executes one job at a time under that job's
// wall-clock budget, checkpointing at epoch boundaries and resuming from
// the latest checkpoint; a supervisor loop restarts failed attempts with
// exponential backoff up to the retry budget. Drain stops everything
// gracefully: running jobs finish their round in flight and checkpoint.
type Server struct {
	limits Limits
	store  *CheckpointStore
	reg    *obs.Registry // service-level instruments (per-job ones live on each Job)

	ready atomic.Bool

	baseCtx    context.Context // parent of every job context; Close cancels it
	baseCancel context.CancelFunc

	mu       sync.Mutex // ordering: s.mu may be held while taking a Job's mutex, never the reverse
	jobs     map[string]*Job
	byName   map[string]*Job
	nextID   int
	draining bool

	queue     chan *Job
	drainOnce sync.Once
	drainCh   chan struct{}
	wg        sync.WaitGroup

	retriesTotal *obs.Counter
	drainNs      *obs.Histogram
}

// NewServer creates a server and starts its runner pool. reg may be nil
// (instruments become no-ops).
func NewServer(lim Limits, store *CheckpointStore, reg *obs.Registry) *Server {
	lim = lim.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		limits:       lim,
		store:        store,
		reg:          reg,
		baseCtx:      ctx,
		baseCancel:   cancel,
		jobs:         make(map[string]*Job),
		byName:       make(map[string]*Job),
		queue:        make(chan *Job, lim.MaxQueue),
		drainCh:      make(chan struct{}),
		retriesTotal: reg.Counter("service.jobs.retries"),
		drainNs:      reg.Histogram("service.drain_latency_ns"),
	}
	s.ready.Store(true)
	s.wg.Add(lim.MaxConcurrent)
	for i := 0; i < lim.MaxConcurrent; i++ {
		go s.runner()
	}
	return s
}

// Ready reports whether the server accepts new jobs (false once a drain
// started) — the readiness probe's answer.
func (s *Server) Ready() bool { return s.ready.Load() }

// Limits returns the effective (defaults-filled) budgets.
func (s *Server) Limits() Limits { return s.limits }

// Submit builds the job's trainer config and datasets (the spec must
// already be validated), registers the job, and enqueues it. The
// checkpoint store is consulted at run time, so a spec resubmitted under
// a drained job's name resumes that job.
func (s *Server) Submit(spec *JobSpec) (*Job, error) {
	// Build the trainer config and datasets here, in the submitter's
	// context, not in the runner goroutine: the runner must only read
	// what Submit constructed (see the field comment on Job.cfg). A
	// side benefit is failure locality — a spec the builders reject is
	// a 400 at submit time, never an asynchronous failed job.
	cfg, err := spec.buildConfig()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	train, test, err := spec.buildDataset()
	if err != nil {
		if errors.Is(err, ErrBadSpec) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if prev := s.byName[spec.Name]; prev != nil && !prev.State().terminal() {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrConflict, prev.ID, prev.State())
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%d", s.nextID), *spec)
	job.bindWork(cfg, train, test, s.store)
	s.jobs[job.ID] = job
	s.byName[spec.Name] = job
	s.mu.Unlock()

	select {
	case s.queue <- job:
		s.updateGauges()
		return job, nil
	default:
		// Roll the registration back so the name frees up immediately.
		s.mu.Lock()
		delete(s.jobs, job.ID)
		if s.byName[spec.Name] == job {
			delete(s.byName, spec.Name)
		}
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Get returns the job with the given ID.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.jobs[id]
	if job == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return job, nil
}

// List returns every job's status, oldest first.
func (s *Server) List() []Status {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	sort.Slice(out, func(i, k int) bool { return jobIDLess(out[i].ID, out[k].ID) })
	return out
}

// jobIDLess orders "job-N" identifiers numerically (job-2 before job-10).
func jobIDLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// Cancel hard-stops a job: pending jobs go straight to cancelled, running
// jobs have their context cancelled (the trainer unblocks within one
// RoundDeadline and the round in flight). Idempotent on terminal jobs.
func (s *Server) Cancel(id string) (*Job, error) {
	job, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	job.requestCancel("cancelled via DELETE")
	s.updateGauges()
	return job, nil
}

// Drain gracefully stops the server: readiness flips immediately, queued
// jobs are cancelled, running jobs finish their current round and
// checkpoint, and every runner joins. ctx bounds the graceful phase; when
// it expires the remaining jobs are hard-cancelled (still bounded — the
// trainer guarantees prompt unblock). Safe to call once; later calls wait
// for the first drain to finish.
func (s *Server) Drain(ctx context.Context) {
	t0 := time.Now()
	s.ready.Store(false)
	s.mu.Lock()
	s.draining = true
	running := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if st := j.State(); st == StateRunning || st == StateDraining {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	for _, j := range running {
		j.requestDrain()
	}
	// Empty the queue: a drain means these will not run.
	for emptied := false; !emptied; {
		select {
		case j := <-s.queue:
			j.requestCancel("service draining")
		default:
			emptied = true
		}
	}
	s.updateGauges()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.wg.Wait()
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.requestCancel("drain deadline exceeded")
		}
		s.mu.Unlock()
		<-done
	}
	s.updateGauges()
	s.drainNs.Since(t0)
}

// Close hard-stops the server without the graceful phase: every job
// context is cancelled and the runners join. Intended for tests and
// fatal-error teardown; operators drain.
func (s *Server) Close() {
	s.ready.Store(false)
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	s.drainOnce.Do(func() { close(s.drainCh) })
	for {
		select {
		case j := <-s.queue:
			j.requestCancel("server closed")
		default:
			s.wg.Wait()
			s.updateGauges()
			return
		}
	}
}

// runner is one scheduler slot: it executes queued jobs until drain.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCh:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob is the supervisor for one job: run attempts, classify failures,
// retry transient ones with exponential backoff from the latest
// checkpoint, and finalize the state machine.
func (s *Server) runJob(job *Job) {
	defer s.updateGauges()
	backoff := s.limits.RetryBackoff
	for attempt := 0; ; attempt++ {
		res, err := s.runAttempt(job)
		s.updateGauges()
		switch {
		case errors.Is(err, errJobStopped):
			return
		case err == nil && res != nil && res.Drained:
			return // finishAttempt parked it cancelled-with-checkpoint
		case err == nil:
			// Clean completion: the checkpoint would only make a resubmit
			// into an instantly-complete no-op, so drop it.
			s.store.Delete(job.Spec.Name)
			return
		}
		// Attempt errored. Cancellation (DELETE, wall-clock deadline, server
		// close) is a terminal verdict, not a fault to retry.
		if ctxErr := attemptCtxErr(err); ctxErr != nil {
			if errors.Is(ctxErr, context.DeadlineExceeded) {
				job.markFailed(fmt.Errorf("wall-clock budget (%ds) exhausted", job.Spec.DeadlineSec))
			} else {
				job.markCancelled("cancelled")
			}
			return
		}
		if attempt >= s.limits.RetryBudget || errors.Is(err, cluster.ErrDialPermanent) {
			job.markFailed(err)
			return
		}
		job.noteRetry(err)
		s.retriesTotal.Inc()
		s.updateGauges()
		if !s.retryWait(job, backoff) {
			job.markCancelled("cancelled during retry backoff")
			return
		}
		backoff *= 2
	}
}

// attemptCtxErr extracts the context verdict from a failed attempt.
func attemptCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return context.DeadlineExceeded
	case errors.Is(err, context.Canceled):
		return context.Canceled
	}
	return nil
}

// retryWait sleeps the supervisor backoff, aborting early (returning
// false) when the server drains or closes. Job-level cancellation is
// checked after the wait by the next beginAttempt.
func (s *Server) retryWait(job *Job, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return job.State() != StateCancelled
	case <-s.drainCh:
		return false
	case <-s.baseCtx.Done():
		return false
	}
}

// runAttempt executes one training attempt of the job: context with the
// job's wall-clock budget, drain channel wired to the job, checkpoints
// saved under the job's name, and the latest checkpoint (if any) restored.
// The base config and work thunks were bound by Submit (see Job.bindWork);
// only the per-attempt lifecycle hooks are wired here.
func (s *Server) runAttempt(job *Job) (*trainer.Result, error) {
	spec := &job.Spec
	cfg := job.cfg
	cfg.Metrics = job.Metrics
	cfg.Drain = job.drainCh
	cfg.OnCheckpoint = job.saveCheckpoint
	cp, err := job.loadCheckpoint()
	if err != nil {
		job.markFailed(err)
		return nil, errJobStopped
	}
	if cp != nil {
		cfg.Resume = cp
		job.noteResumed(cp.Rounds)
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, time.Duration(spec.DeadlineSec)*time.Second)
	defer cancel()
	if err := job.beginAttempt(cancel); err != nil {
		return nil, errJobStopped
	}
	s.updateGauges()

	res, err := job.invoke(ctx, cfg)
	job.finishAttempt(res, err)
	return res, err
}

// updateGauges recomputes the jobs-by-state gauges. Jobs number at most
// queue+history per process lifetime; a linear walk per transition is
// noise next to a training round.
func (s *Server) updateGauges() {
	if s.reg == nil {
		return
	}
	var counts [6]int64
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.State() {
		case StatePending:
			counts[0]++
		case StateRunning:
			counts[1]++
		case StateDraining:
			counts[2]++
		case StateDone:
			counts[3]++
		case StateFailed:
			counts[4]++
		case StateCancelled:
			counts[5]++
		}
	}
	s.mu.Unlock()
	names := [...]string{"pending", "running", "draining", "done", "failed", "cancelled"}
	for i, n := range names {
		s.reg.Gauge("service.jobs." + n).Set(counts[i])
	}
}
