package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler builds the control API on a standard mux:
//
//	POST   /jobs      submit a job (JSON JobSpec body)      → 202 Status
//	GET    /jobs      list all jobs                         → 200 []Status
//	GET    /jobs/{id} one job's status (+?metrics=1)        → 200 Status
//	DELETE /jobs/{id} cancel a job                          → 202 Status
//	GET    /healthz   process liveness                      → 200 always
//	GET    /readyz    accepting jobs?                       → 200 / 503 while draining
//
// Errors are JSON {"error": "..."} with the status code carrying the
// classification (400 bad spec, 404 unknown job, 409 name conflict, 429
// queue full, 503 draining).
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeError(w, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// statusWithMetrics extends the status JSON with the job's full metrics
// snapshot when requested.
type statusWithMetrics struct {
	Status
	Metrics any `json:"metrics,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader tears the connection down past the cap; DecodeJobSpec
	// enforces the same bound on what it buffers.
	body := http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	spec, err := DecodeJobSpec(body, s.limits.MaxBodyBytes, s.limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeError(w, submitStatusCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func submitStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if r.URL.Query().Get("metrics") == "1" {
		writeJSON(w, http.StatusOK, statusWithMetrics{
			Status:  job.Status(),
			Metrics: job.Metrics.Snapshot(),
		})
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The header is out; an encode failure (client gone, marshal error) has
	// no channel left to report on.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
