// Package countmin implements the Count-Min frequency sketch of Cormode and
// Muthukrishnan (Journal of Algorithms 2005), the classical structure that
// SketchML's Section 2.4 reviews and whose additive insert strategy the
// paper shows to be unusable for bucket indexes (it only overestimates,
// which amplifies decoded gradients and destabilizes SGD).
//
// It is included both as a reproduction of the paper's Figure 1 baseline and
// for the ablation bench that contrasts additive-min behaviour with
// MinMaxSketch's min-insert/max-query strategy.
package countmin

import (
	"fmt"
	"math"

	"sketchml/internal/hashing"
	"sketchml/internal/invariant"
)

// Sketch is a Count-Min sketch with s rows (hash tables) of t counters each.
// Insert adds to one counter per row; Query returns the minimum candidate.
//
// Estimates never underestimate: Query(x) >= true frequency of x, and with
// probability 1-delta, Query(x) <= true + eps*N where the sketch was sized
// with NewWithError(eps, delta).
type Sketch struct {
	rows, cols int
	counts     []uint64 // rows*cols, row-major
	family     *hashing.Family
	n          uint64 // total insertions (weight)
}

// New creates a sketch with the given number of rows (hash tables) and
// columns (bins per table), seeded deterministically.
func New(rows, cols int, seed uint64) *Sketch {
	if rows <= 0 || cols <= 0 {
		invariant.Failf("countmin: invalid dimensions %dx%d", rows, cols)
	}
	return &Sketch{
		rows:   rows,
		cols:   cols,
		counts: make([]uint64, rows*cols),
		family: hashing.NewFamily(rows, cols, seed),
	}
}

// NewWithError creates a sketch guaranteeing overestimation at most
// eps*N with probability at least 1-delta, using the standard sizing
// rows = ceil(ln(1/delta)), cols = ceil(e/eps).
func NewWithError(eps, delta float64, seed uint64) *Sketch {
	if !(eps > 0 && eps < 1) || !(delta > 0 && delta < 1) {
		invariant.Fail("countmin: eps and delta must be in (0,1)")
	}
	rows := int(math.Ceil(math.Log(1 / delta)))
	cols := int(math.Ceil(math.E / eps))
	if rows < 1 {
		rows = 1
	}
	return New(rows, cols, seed)
}

// Rows returns the number of hash tables.
func (s *Sketch) Rows() int { return s.rows }

// Cols returns the number of bins per table.
func (s *Sketch) Cols() int { return s.cols }

// TotalWeight returns the sum of all inserted counts.
func (s *Sketch) TotalWeight() uint64 { return s.n }

// Insert adds one occurrence of key.
func (s *Sketch) Insert(key uint64) { s.InsertWeighted(key, 1) }

// InsertWeighted adds w occurrences of key.
func (s *Sketch) InsertWeighted(key uint64, w uint64) {
	for r := 0; r < s.rows; r++ {
		s.counts[r*s.cols+s.family.Index(r, key)] += w
	}
	s.n += w
}

// Query returns the estimated frequency of key: the minimum counter across
// rows. The estimate never underestimates the true frequency.
func (s *Sketch) Query(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < s.rows; r++ {
		if c := s.counts[r*s.cols+s.family.Index(r, key)]; c < min {
			min = c
		}
	}
	return min
}

// Merge adds another sketch's counts into s. Both sketches must have been
// created with identical dimensions and seed, otherwise Merge returns an
// error and leaves s unchanged.
func (s *Sketch) Merge(other *Sketch) error {
	if other.rows != s.rows || other.cols != s.cols {
		return fmt.Errorf("countmin: dimension mismatch %dx%d vs %dx%d",
			s.rows, s.cols, other.rows, other.cols)
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.n += other.n
	return nil
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n = 0
}

// SizeBytes returns the memory footprint of the counter array.
func (s *Sketch) SizeBytes() int { return len(s.counts) * 8 }
