package countmin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNeverUnderestimates(t *testing.T) {
	s := New(4, 256, 42)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(1000)) // heavy collisions on purpose
		s.Insert(k)
		truth[k]++
	}
	for k, want := range truth {
		if got := s.Query(k); got < want {
			t.Fatalf("Query(%d) = %d underestimates true %d", k, got, want)
		}
	}
}

func TestExactWhenNoCollisions(t *testing.T) {
	// With very few keys and a wide sketch, estimates should be exact.
	s := New(4, 1<<14, 7)
	for k := uint64(0); k < 10; k++ {
		s.InsertWeighted(k, k+1)
	}
	for k := uint64(0); k < 10; k++ {
		if got := s.Query(k); got != k+1 {
			t.Errorf("Query(%d) = %d, want %d", k, got, k+1)
		}
	}
}

func TestErrorBound(t *testing.T) {
	// eps=0.01, delta=0.01: overestimate <= eps*N for >= 99% of keys.
	s := NewWithError(0.01, 0.01, 3)
	rng := rand.New(rand.NewSource(2))
	truth := map[uint64]uint64{}
	const n = 50000
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(5000))
		s.Insert(k)
		truth[k]++
	}
	bad := 0
	for k, want := range truth {
		if float64(s.Query(k)-want) > 0.01*n {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > 0.05 {
		t.Errorf("%.1f%% of keys exceed eps*N overestimation, want <=5%%", frac*100)
	}
}

func TestUnseenKeyLowEstimate(t *testing.T) {
	s := New(4, 4096, 11)
	for k := uint64(0); k < 100; k++ {
		s.Insert(k)
	}
	// A never-inserted key should usually estimate 0 in a sparse sketch.
	zero := 0
	for k := uint64(1e6); k < 1e6+100; k++ {
		if s.Query(k) == 0 {
			zero++
		}
	}
	if zero < 90 {
		t.Errorf("only %d/100 unseen keys estimated 0", zero)
	}
}

func TestMerge(t *testing.T) {
	a := New(3, 512, 5)
	b := New(3, 512, 5)
	for k := uint64(0); k < 50; k++ {
		a.InsertWeighted(k, 2)
		b.InsertWeighted(k, 3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.TotalWeight() != 250 {
		t.Fatalf("TotalWeight = %d, want 250", a.TotalWeight())
	}
	for k := uint64(0); k < 50; k++ {
		if got := a.Query(k); got < 5 {
			t.Errorf("after merge Query(%d) = %d, want >= 5", k, got)
		}
	}
}

func TestMergeDimensionMismatch(t *testing.T) {
	a := New(3, 512, 5)
	b := New(4, 512, 5)
	if err := a.Merge(b); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestReset(t *testing.T) {
	s := New(2, 64, 1)
	s.Insert(9)
	s.Reset()
	if s.Query(9) != 0 || s.TotalWeight() != 0 {
		t.Error("Reset did not clear sketch")
	}
}

func TestSizeBytes(t *testing.T) {
	s := New(4, 100, 0)
	if s.SizeBytes() != 4*100*8 {
		t.Errorf("SizeBytes = %d, want %d", s.SizeBytes(), 4*100*8)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10, 1) },
		func() { New(10, 0, 1) },
		func() { NewWithError(0, 0.1, 1) },
		func() { NewWithError(0.1, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Query is monotone under insertion — inserting any key never
// decreases any estimate.
func TestQuickMonotone(t *testing.T) {
	s := New(4, 128, 99)
	probe := []uint64{1, 2, 3, 1000, 99999}
	err := quick.Check(func(k uint64) bool {
		before := make([]uint64, len(probe))
		for i, p := range probe {
			before[i] = s.Query(p)
		}
		s.Insert(k)
		for i, p := range probe {
			if s.Query(p) < before[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(4, 1<<16, 42)
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i))
	}
}

func BenchmarkQuery(b *testing.B) {
	s := New(4, 1<<16, 42)
	for i := 0; i < 1<<16; i++ {
		s.Insert(uint64(i))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Query(uint64(i))
	}
	_ = sink
}
