package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestKLLEmpty(t *testing.T) {
	s := NewKLL(128, 1)
	if _, err := s.Query(0.5); err == nil {
		t.Error("Query on empty sketch should error")
	}
	if _, err := s.Splits(4); err == nil {
		t.Error("Splits on empty sketch should error")
	}
}

func TestKLLSingleValue(t *testing.T) {
	s := NewKLL(128, 1)
	s.Insert(7.5)
	for _, phi := range []float64{0, 0.5, 1} {
		if got := s.MustQuery(phi); got != 7.5 {
			t.Errorf("Query(%v) = %v", phi, got)
		}
	}
}

func TestKLLExactExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewKLL(64, 2)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 50000; i++ {
		v := rng.NormFloat64()
		s.Insert(v)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if s.MustQuery(0) != lo || s.MustQuery(1) != hi {
		t.Error("extremes not exact")
	}
}

func TestKLLAccuracy(t *testing.T) {
	for name, gen := range map[string]func(*rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 { return r.Float64() },
		"normal":  func(r *rand.Rand) float64 { return r.NormFloat64() },
		"gradient-like": func(r *rand.Rand) float64 {
			v := r.ExpFloat64() * 0.01
			if r.Intn(2) == 0 {
				v = -v
			}
			return v
		},
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			s := NewKLL(256, 4)
			xs := make([]float64, 60000)
			for i := range xs {
				xs[i] = gen(rng)
				s.Insert(xs[i])
			}
			sort.Float64s(xs)
			n := float64(len(xs))
			for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				got := s.MustQuery(phi)
				r := float64(trueRank(xs, got))
				// KLL with k=256 should land well within 2% rank error.
				if math.Abs(r-phi*n) > 0.02*n {
					lo := float64(sort.SearchFloat64s(xs, got)) + 1
					if phi*n >= lo && phi*n <= r {
						continue
					}
					t.Errorf("phi=%.2f: rank %v, want within %v of %v", phi, r, 0.02*n, phi*n)
				}
			}
		})
	}
}

func TestKLLSpaceBounded(t *testing.T) {
	s := NewKLL(128, 5)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500000; i++ {
		s.Insert(rng.NormFloat64())
	}
	// O(k log(n/k)): for k=128, n=5e5, a loose practical ceiling.
	if got := s.Retained(); got > 2000 {
		t.Errorf("retained %d items, want O(k log(n/k))", got)
	}
	if s.Count() != 500000 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestKLLSplitsEqualPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewKLL(256, 8)
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		s.Insert(xs[i])
	}
	sort.Float64s(xs)
	const q = 8
	splits, err := s.Splits(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != q+1 {
		t.Fatalf("%d splits", len(splits))
	}
	want := float64(len(xs)) / q
	for i := 0; i < q; i++ {
		lo := trueRank(xs, splits[i])
		if i == 0 {
			lo = 0
		}
		hi := trueRank(xs, splits[i+1])
		if math.Abs(float64(hi-lo)-want) > 0.25*want {
			t.Errorf("bucket %d population %d, want ~%.0f", i, hi-lo, want)
		}
	}
}

func TestKLLMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := NewKLL(128, 10), NewKLL(128, 11)
	var all []float64
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64()
		a.Insert(v)
		all = append(all, v)
	}
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64() + 3
		b.Insert(v)
		all = append(all, v)
	}
	a.Merge(b)
	a.Merge(nil)
	if a.Count() != 40000 {
		t.Fatalf("Count = %d", a.Count())
	}
	sort.Float64s(all)
	n := float64(len(all))
	med := a.MustQuery(0.5)
	if r := float64(trueRank(all, med)); math.Abs(r-0.5*n) > 0.03*n {
		t.Errorf("merged median rank %v, want ~%v", r, 0.5*n)
	}
	// b unchanged.
	if b.Count() != 20000 {
		t.Error("Merge mutated source")
	}
}

func TestKLLReset(t *testing.T) {
	s := NewKLL(64, 12)
	for i := 0; i < 1000; i++ {
		s.Insert(float64(i))
	}
	s.Reset()
	if s.Count() != 0 || s.Retained() != 0 {
		t.Error("Reset incomplete")
	}
	s.Insert(5)
	if s.MustQuery(0.5) != 5 {
		t.Error("sketch unusable after Reset")
	}
}

func TestKLLDeterministicPerSeed(t *testing.T) {
	build := func(seed int64) *KLL {
		s := NewKLL(64, seed)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 30000; i++ {
			s.Insert(rng.NormFloat64())
		}
		return s
	}
	a, b := build(1), build(1)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if a.MustQuery(phi) != b.MustQuery(phi) {
			t.Fatal("same seed, different answers")
		}
	}
}

func TestKLLPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewKLL(2) should panic")
			}
		}()
		NewKLL(2, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NaN insert should panic")
			}
		}()
		NewKLL(64, 0).Insert(math.NaN())
	}()
}

func TestGKAndKLLAgree(t *testing.T) {
	// Both sketches should land close to the true quantiles of the same
	// stream — a cross-validation of the two implementations.
	rng := rand.New(rand.NewSource(13))
	gk := New(0.005)
	kll := NewKLL(256, 14)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 0.1
		gk.Insert(xs[i])
		kll.Insert(xs[i])
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		g := float64(trueRank(xs, gk.MustQuery(phi)))
		k := float64(trueRank(xs, kll.MustQuery(phi)))
		if math.Abs(g-k) > 0.03*n {
			t.Errorf("phi=%v: GK rank %v and KLL rank %v disagree", phi, g, k)
		}
	}
}

func BenchmarkKLLInsert(b *testing.B) {
	s := NewKLL(128, 1)
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(vals[i&(1<<16-1)])
	}
}

func BenchmarkKLLSplits256(b *testing.B) {
	s := NewKLL(256, 3)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		s.Insert(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Splits(256); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRankQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gk := New(0.01)
	kll := NewKLL(256, 22)
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		gk.Insert(xs[i])
		kll.Insert(xs[i])
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	for _, v := range []float64{-2, -1, 0, 0.5, 1.5} {
		truth := float64(trueRank(xs, v)) / n
		for name, rank := range map[string]func(float64) (float64, error){
			"GK": gk.Rank, "KLL": kll.Rank,
		} {
			got, err := rank(v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-truth) > 0.02 {
				t.Errorf("%s Rank(%v) = %.4f, truth %.4f", name, v, got, truth)
			}
		}
	}
	// Rank and Query are approximate inverses.
	med := gk.MustQuery(0.5)
	if r, _ := gk.Rank(med); math.Abs(r-0.5) > 0.03 {
		t.Errorf("GK Rank(Query(0.5)) = %v", r)
	}
}

func TestRankEmpty(t *testing.T) {
	if _, err := New(0.1).Rank(0); err == nil {
		t.Error("GK Rank on empty should error")
	}
	if _, err := NewKLL(64, 1).Rank(0); err == nil {
		t.Error("KLL Rank on empty should error")
	}
}

func TestRankExtremes(t *testing.T) {
	gk := New(0.05)
	kll := NewKLL(64, 2)
	for i := 1; i <= 100; i++ {
		gk.Insert(float64(i))
		kll.Insert(float64(i))
	}
	for name, rank := range map[string]func(float64) (float64, error){
		"GK": gk.Rank, "KLL": kll.Rank,
	} {
		if r, _ := rank(0); r != 0 {
			t.Errorf("%s Rank(below min) = %v, want 0", name, r)
		}
		if r, _ := rank(1000); r != 1 {
			t.Errorf("%s Rank(above max) = %v, want 1", name, r)
		}
	}
}
