package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// quantileDistributions is the property-test input matrix: the shapes the
// paper's gradients actually take (near-zero-concentrated, heavy-tailed)
// plus the degenerate constant stream that breaks naive split logic.
func quantileDistributions() map[string]func(*rand.Rand) float64 {
	return map[string]func(*rand.Rand) float64{
		"uniform":  func(r *rand.Rand) float64 { return r.Float64() },
		"gaussian": func(r *rand.Rand) float64 { return r.NormFloat64() },
		// Pareto with α=1.2: infinite variance, the adversarial case for
		// equal-population splits.
		"heavy-tailed": func(r *rand.Rand) float64 { return math.Pow(1-r.Float64(), -1/1.2) },
		"constant":     func(r *rand.Rand) float64 { return 3.25 },
	}
}

// querier is the query surface shared by GK and KLL.
type querier interface{ MustQuery(phi float64) float64 }

// checkRankBound verifies every queried quantile lands within maxErr ranks
// of its target, tolerating ties (a repeated value occupies a rank range).
func checkRankBound(t *testing.T, s querier, sorted []float64, maxErr float64) {
	t.Helper()
	n := float64(len(sorted))
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.MustQuery(phi)
		r := float64(trueRank(sorted, got))
		target := math.Ceil(phi * n)
		if phi == 0 {
			target = 1
		}
		if math.Abs(r-target) > maxErr+1 {
			lo := float64(sort.SearchFloat64s(sorted, got)) + 1
			if target >= lo && target <= r {
				continue // inside the tie range
			}
			t.Errorf("phi=%.2f: value %v has rank %v, want within %v of %v",
				phi, got, r, maxErr, target)
		}
	}
}

// TestRankErrorBoundAcrossDistributions is the ε-contract property test:
// for every distribution and several seeds, both quantile sketches must
// answer every rank query within ε·N of truth — the exact guarantee
// SketchML's bucket quantification is built on (GK: ε = 1/m by
// construction; KLL with k=256 is held to the 2% bound the paper's
// DataSketches baseline achieves).
func TestRankErrorBoundAcrossDistributions(t *testing.T) {
	const n = 20000
	for name, gen := range quantileDistributions() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				gk := NewWithSize(128)
				kll := NewKLL(256, seed)
				xs := make([]float64, n)
				for i := range xs {
					xs[i] = gen(rng)
					gk.Insert(xs[i])
					kll.Insert(xs[i])
				}
				sort.Float64s(xs)
				checkRankBound(t, gk, xs, gk.Epsilon()*n)
				checkRankBound(t, kll, xs, 0.02*n)
			}
		})
	}
}

// TestMergeEquivalenceSplitStreams pins Section 2.3's merge operation: a
// sketch merged from two sketches over a split stream must answer within
// the combined bound (ε_A+ε_B for GK) of the true ranks of the
// concatenation — i.e. merging is equivalent, up to the advertised ε, to
// having sketched the whole stream in one pass. The 40/60 split and
// per-half distributions differ so the merge cannot cheat by symmetry.
func TestMergeEquivalenceSplitStreams(t *testing.T) {
	const n = 30000
	for name, gen := range quantileDistributions() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(rng)
				if i >= n*2/5 {
					xs[i] *= 0.5 // second shard sees a shifted distribution
				}
			}
			cut := n * 2 / 5

			gkA, gkB, gkOne := NewWithSize(128), NewWithSize(128), NewWithSize(128)
			kllA, kllB, kllOne := NewKLL(256, 21), NewKLL(256, 22), NewKLL(256, 23)
			for i, v := range xs {
				if i < cut {
					gkA.Insert(v)
					kllA.Insert(v)
				} else {
					gkB.Insert(v)
					kllB.Insert(v)
				}
				gkOne.Insert(v)
				kllOne.Insert(v)
			}
			gkA.Merge(gkB)
			kllA.Merge(kllB)
			if gkA.Count() != n || kllA.Count() != n {
				t.Fatalf("merged counts %d/%d, want %d", gkA.Count(), kllA.Count(), n)
			}

			sort.Float64s(xs)
			// Single-pass sketches hold their own ε; the merged ones the
			// combined bound.
			checkRankBound(t, gkOne, xs, gkOne.Epsilon()*n)
			checkRankBound(t, gkA, xs, (1.0/128+1.0/128)*n)
			checkRankBound(t, kllOne, xs, 0.02*n)
			checkRankBound(t, kllA, xs, 0.04*n)
		})
	}
}

// TestPrunePreservesGuarantee forces heavy pruning — a long stream plus a
// chain of merges, each of which compresses the summary back under its
// size bound — and checks the ε rank guarantee and the space bound both
// survive. A prune that dropped the wrong tuples would show up here as a
// rank excursion beyond the combined ε.
func TestPrunePreservesGuarantee(t *testing.T) {
	const shard = 25000
	rng := rand.New(rand.NewSource(31))
	merged := NewWithSize(128)
	var xs []float64
	for s := 0; s < 4; s++ { // 3 merges on top of 100k inserts
		part := NewWithSize(128)
		for i := 0; i < shard; i++ {
			v := rng.NormFloat64() * math.Pow(10, float64(s-2)) // scales differ per shard
			part.Insert(v)
			xs = append(xs, v)
		}
		merged.Merge(part)
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	// Each merge adds the operand's ε: 4 shards at 1/128 each.
	checkRankBound(t, merged, xs, 4.0/128*n)
	// Prune must keep the summary near its O((1/ε)·log(εn)) footprint.
	if size := merged.SummarySize(); size > 6000 {
		t.Errorf("summary size %d after merges, prune is not compressing", size)
	}
}
