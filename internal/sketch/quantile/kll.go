package quantile

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sketchml/internal/invariant"
)

// KLL is a Karnin–Lang–Liberty quantile sketch — the algorithm behind the
// Yahoo/Apache DataSketches library that the paper's prototype uses for its
// quantile splits (Section 3.2, "Here we choose Yahoo DataSketches").
//
// The sketch keeps a hierarchy of compactors. Level 0 buffers raw items;
// when a level overflows it sorts its buffer and promotes every other item
// (chosen by a random coin flip) to the next level, which represents each
// item with weight 2^level. Rank queries sum the weights of retained items
// below the query point. Space is O(k·log(n/k)) and rank error is
// proportional to 1/k with high probability.
//
// The randomness is seeded per sketch, so runs are reproducible.
type KLL struct {
	k      int
	levels [][]float64
	n      int64
	rng    *rand.Rand
	min    float64
	max    float64
}

// NewKLL creates a KLL sketch with parameter k (the size of the largest
// compactor; 128–256 matches the paper's "size of quantile sketch").
func NewKLL(k int, seed int64) *KLL {
	if k < 8 {
		invariant.Failf("quantile: KLL k=%d too small (need >= 8)", k)
	}
	return &KLL{
		k:      k,
		levels: [][]float64{make([]float64, 0, k)},
		rng:    rand.New(rand.NewSource(seed)),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Count returns the number of values inserted so far.
func (s *KLL) Count() int64 { return s.n }

// Retained returns the number of items currently stored across levels.
func (s *KLL) Retained() int {
	total := 0
	for _, l := range s.levels {
		total += len(l)
	}
	return total
}

// capacityAt returns the capacity of the given level: levels shrink
// geometrically below the top (factor ~2/3 as in the KLL paper's practical
// variant), with a floor of 8.
func (s *KLL) capacityAt(level, numLevels int) int {
	depth := numLevels - 1 - level
	c := float64(s.k)
	for i := 0; i < depth; i++ {
		c *= 2.0 / 3.0
	}
	if c < 8 {
		return 8
	}
	return int(c)
}

// Insert adds one observation.
func (s *KLL) Insert(v float64) {
	if math.IsNaN(v) {
		invariant.Fail("quantile: cannot insert NaN")
	}
	s.levels[0] = append(s.levels[0], v)
	s.n++
	s.min = math.Min(s.min, v)
	s.max = math.Max(s.max, v)
	if len(s.levels[0]) >= s.capacityAt(0, len(s.levels)) {
		s.compress()
	}
}

// InsertAll adds every value in vs.
func (s *KLL) InsertAll(vs []float64) {
	for _, v := range vs {
		s.Insert(v)
	}
}

// compress walks levels bottom-up, compacting any that exceed capacity.
func (s *KLL) compress() {
	for level := 0; level < len(s.levels); level++ {
		if len(s.levels[level]) < s.capacityAt(level, len(s.levels)) {
			continue
		}
		buf := s.levels[level]
		sort.Float64s(buf)
		if level+1 >= len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, s.k))
		}
		// Promote every other item, with a random starting offset so the
		// rank error is unbiased.
		offset := s.rng.Intn(2)
		for i := offset; i < len(buf); i += 2 {
			s.levels[level+1] = append(s.levels[level+1], buf[i])
		}
		s.levels[level] = s.levels[level][:0]
	}
}

// Query returns an approximation of the phi-quantile. Query(0) and
// Query(1) return the exact minimum and maximum.
func (s *KLL) Query(phi float64) (float64, error) {
	if phi < 0 || phi > 1 {
		return 0, fmt.Errorf("quantile: phi %v out of [0,1]", phi)
	}
	if s.n == 0 {
		return 0, errors.New("quantile: empty sketch")
	}
	if phi == 0 {
		return s.min, nil
	}
	if phi >= 1 { // validated phi <= 1 above; exact top rank
		return s.max, nil
	}
	type wv struct {
		v float64
		w int64
	}
	items := make([]wv, 0, s.Retained())
	for level, l := range s.levels {
		w := int64(1) << uint(level)
		for _, v := range l {
			items = append(items, wv{v, w})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	target := phi * float64(s.n)
	var cum float64
	for _, it := range items {
		cum += float64(it.w)
		if cum >= target {
			return it.v, nil
		}
	}
	return s.max, nil
}

// MustQuery is Query but panics on error.
func (s *KLL) MustQuery(phi float64) float64 {
	v, err := s.Query(phi)
	if err != nil {
		panic(err)
	}
	return v
}

// Splits returns q+1 split points dividing the stream into q
// equal-population buckets, mirroring GK.Splits.
func (s *KLL) Splits(q int) ([]float64, error) {
	if q < 1 {
		return nil, fmt.Errorf("quantile: bucket count %d < 1", q)
	}
	if s.n == 0 {
		return nil, errors.New("quantile: empty sketch")
	}
	splits := make([]float64, q+1)
	for i := 0; i <= q; i++ {
		v, err := s.Query(float64(i) / float64(q))
		if err != nil {
			return nil, err
		}
		splits[i] = v
	}
	for i := 1; i <= q; i++ {
		if splits[i] < splits[i-1] {
			splits[i] = splits[i-1]
		}
	}
	return splits, nil
}

// Merge folds another KLL sketch into s level by level (the DataSketches
// merge operation). The other sketch is left unchanged.
func (s *KLL) Merge(other *KLL) {
	if other == nil || other.n == 0 {
		return
	}
	for len(s.levels) < len(other.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
	}
	for level, l := range other.levels {
		s.levels[level] = append(s.levels[level], l...)
	}
	s.n += other.n
	s.min = math.Min(s.min, other.min)
	s.max = math.Max(s.max, other.max)
	s.compress()
}

// Reset empties the sketch for reuse.
func (s *KLL) Reset() {
	s.levels = s.levels[:1]
	s.levels[0] = s.levels[0][:0]
	s.n = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Sketch is the interface both quantile sketch implementations satisfy;
// the quantizer accepts either.
type Sketch interface {
	Insert(v float64)
	InsertAll(vs []float64)
	Count() int64
	Query(phi float64) (float64, error)
	Splits(q int) ([]float64, error)
}

var (
	_ Sketch = (*GK)(nil)
	_ Sketch = (*KLL)(nil)
)

// Rank returns the approximate fraction of inserted values that are <= v
// (the empirical CDF at v). Returns an error on an empty sketch.
func (s *KLL) Rank(v float64) (float64, error) {
	if s.n == 0 {
		return 0, errors.New("quantile: empty sketch")
	}
	var below int64
	for level, l := range s.levels {
		w := int64(1) << uint(level)
		for _, x := range l {
			if x <= v {
				below += w
			}
		}
	}
	return float64(below) / float64(s.n), nil
}
