package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// trueRank returns the rank (1-based) of the largest element <= v in sorted xs.
func trueRank(xs []float64, v float64) int {
	return sort.SearchFloat64s(xs, math.Nextafter(v, math.Inf(1)))
}

// checkEps verifies every queried quantile is within eps*n ranks of truth.
func checkEps(t *testing.T, s *GK, sorted []float64, eps float64) {
	t.Helper()
	n := float64(len(sorted))
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.MustQuery(phi)
		r := float64(trueRank(sorted, got))
		target := math.Ceil(phi * n)
		if phi == 0 {
			target = 1
		}
		// got's possible rank range is [trueRank of first equal elem, r];
		// allow eps*n + 1 slop for ties/rounding.
		if math.Abs(r-target) > eps*n+1 {
			lo := float64(sort.SearchFloat64s(sorted, got)) + 1
			if target >= lo && target <= r {
				continue // within the tie range
			}
			t.Errorf("phi=%.2f: value %v has rank %v, want within %v of %v",
				phi, got, r, eps*n, target)
		}
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0.01)
	if _, err := s.Query(0.5); err == nil {
		t.Error("Query on empty sketch should error")
	}
	if _, err := s.Splits(4); err == nil {
		t.Error("Splits on empty sketch should error")
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d, want 0", s.Count())
	}
}

func TestSingleValue(t *testing.T) {
	s := New(0.1)
	s.Insert(3.5)
	for _, phi := range []float64{0, 0.5, 1} {
		if got := s.MustQuery(phi); got != 3.5 {
			t.Errorf("Query(%v) = %v, want 3.5", phi, got)
		}
	}
}

func TestExactExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0.05)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()
		s.Insert(v)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if got := s.MustQuery(0); got != lo {
		t.Errorf("Query(0) = %v, want exact min %v", got, lo)
	}
	if got := s.MustQuery(1); got != hi {
		t.Errorf("Query(1) = %v, want exact max %v", got, hi)
	}
}

func TestUniformStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := New(0.01)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.Float64()
		s.Insert(xs[i])
	}
	sort.Float64s(xs)
	checkEps(t, s, xs, 0.01)
}

func TestSkewedStream(t *testing.T) {
	// Gradient-like distribution: most mass near zero (exponential decay),
	// both signs. This is exactly the regime Figure 4 shows.
	rng := rand.New(rand.NewSource(3))
	s := New(0.01)
	xs := make([]float64, 40000)
	for i := range xs {
		v := rng.ExpFloat64() * 0.01
		if rng.Intn(2) == 0 {
			v = -v
		}
		xs[i] = v
		s.Insert(v)
	}
	sort.Float64s(xs)
	checkEps(t, s, xs, 0.01)
}

func TestSortedAndReversedStreams(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(20000 - i) },
		"constant":   func(i int) float64 { return 7 },
	} {
		t.Run(name, func(t *testing.T) {
			s := New(0.02)
			xs := make([]float64, 20000)
			for i := range xs {
				xs[i] = gen(i)
				s.Insert(xs[i])
			}
			sort.Float64s(xs)
			checkEps(t, s, xs, 0.02)
		})
	}
}

func TestSummarySizeStaysSmall(t *testing.T) {
	s := New(0.01)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		s.Insert(rng.NormFloat64())
	}
	size := s.SummarySize()
	// GK space is O((1/eps) * log(eps*n)); for eps=0.01, n=2e5 a loose
	// practical ceiling is a few thousand entries.
	if size > 4000 {
		t.Errorf("summary size %d too large for eps=0.01, n=2e5", size)
	}
	if size < 10 {
		t.Errorf("summary size %d suspiciously small", size)
	}
}

func TestSplitsEqualPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(0.005)
	xs := make([]float64, 60000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		s.Insert(xs[i])
	}
	sort.Float64s(xs)

	const q = 16
	splits, err := s.Splits(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != q+1 {
		t.Fatalf("got %d splits, want %d", len(splits), q+1)
	}
	for i := 1; i <= q; i++ {
		if splits[i] < splits[i-1] {
			t.Fatalf("splits not monotone at %d: %v < %v", i, splits[i], splits[i-1])
		}
	}
	// Each bucket should hold about n/q items, within sketch tolerance.
	n := len(xs)
	want := float64(n) / q
	for i := 0; i < q; i++ {
		lo := trueRank(xs, splits[i])
		hi := trueRank(xs, splits[i+1])
		if i == 0 {
			lo = 0
		}
		got := float64(hi - lo)
		if math.Abs(got-want) > 3*0.005*float64(n)+1 {
			t.Errorf("bucket %d population %v, want ~%v", i, got, want)
		}
	}
}

func TestMergeTwoStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := New(0.01), New(0.01)
	var all []float64
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64()
		a.Insert(v)
		all = append(all, v)
	}
	for i := 0; i < 30000; i++ {
		v := rng.NormFloat64()*0.1 + 2 // different distribution
		b.Insert(v)
		all = append(all, v)
	}
	a.Merge(b)
	if a.Count() != 50000 {
		t.Fatalf("merged Count = %d, want 50000", a.Count())
	}
	sort.Float64s(all)
	// Merged error bound is epsA+epsB = 0.02.
	checkEps(t, a, all, 0.025)
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := New(0.01), New(0.01)
	for i := 0; i < 1000; i++ {
		b.Insert(float64(i))
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", a.Count())
	}
	if got := a.MustQuery(1); got != 999 {
		t.Errorf("max = %v, want 999", got)
	}
	// b must be unchanged.
	if b.Count() != 1000 {
		t.Errorf("merge mutated source: Count = %d", b.Count())
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	a := New(0.01)
	a.Insert(1)
	a.Insert(2)
	a.Merge(New(0.01)) // empty
	a.Merge(nil)
	if a.Count() != 2 {
		t.Fatalf("Count = %d, want 2", a.Count())
	}
}

func TestReset(t *testing.T) {
	s := New(0.05)
	for i := 0; i < 100; i++ {
		s.Insert(float64(i))
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
	s.Insert(42)
	if got := s.MustQuery(0.5); got != 42 {
		t.Errorf("after reset+insert Query(0.5) = %v, want 42", got)
	}
}

func TestQueryRejectsBadPhi(t *testing.T) {
	s := New(0.1)
	s.Insert(1)
	if _, err := s.Query(-0.1); err == nil {
		t.Error("Query(-0.1) should error")
	}
	if _, err := s.Query(1.1); err == nil {
		t.Error("Query(1.1) should error")
	}
}

func TestInsertNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on NaN insert")
		}
	}()
	New(0.1).Insert(math.NaN())
}

func TestConstructorValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 0.6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", eps)
				}
			}()
			New(eps)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewWithSize(1) should panic")
			}
		}()
		NewWithSize(1)
	}()
}

func TestNewWithSize(t *testing.T) {
	s := NewWithSize(128)
	if got := s.Epsilon(); math.Abs(got-1.0/128) > 1e-12 {
		t.Errorf("Epsilon = %v, want 1/128", got)
	}
}

// Property: for random streams, the median query is always within the error
// bound of the true median.
func TestQuickMedianWithinBound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	err := quick.Check(func(seed int64, size uint16) bool {
		n := int(size)%5000 + 100
		rng := rand.New(rand.NewSource(seed))
		s := New(0.02)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
			s.Insert(xs[i])
		}
		sort.Float64s(xs)
		got := s.MustQuery(0.5)
		r := trueRank(xs, got)
		lo := sort.SearchFloat64s(xs, got) + 1
		target := int(math.Ceil(0.5 * float64(n)))
		tol := int(0.02*float64(n)) + 1
		return (target >= lo-tol && target <= r+tol)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(0.01)
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(vals[i&(1<<16-1)])
	}
}

func BenchmarkSplits256(b *testing.B) {
	s := New(0.005)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100000; i++ {
		s.Insert(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Splits(256); err != nil {
			b.Fatal(err)
		}
	}
}
