// Package quantile implements the Greenwald–Khanna (GK) streaming quantile
// sketch used by SketchML's quantile-bucket quantification.
//
// The GK algorithm (SIGMOD 2001) maintains a small ordered summary of an
// unbounded stream such that any rank query is answered within εn of the
// true rank, using O((1/ε)·log(εn)) space. SketchML builds one sketch per
// gradient, extracts q equal-population split points from it, and quantizes
// every gradient value to its bucket.
//
// This implementation supports the two operations the paper's Section 2.3
// names — merge (combining two summaries) and prune (compressing a summary
// back under its size bound) — as well as single-value insertion and
// quantile queries. It substitutes for the Yahoo DataSketches library used
// by the paper's prototype; both provide the same ε-approximate contract.
package quantile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sketchml/internal/invariant"
)

// tuple is one entry of the GK summary.
//
// For the i-th tuple (ordered by value), the true minimum possible rank of
// value is rmin(i) = Σ_{j≤i} g_j and the maximum possible rank is
// rmax(i) = rmin(i) + delta_i.
type tuple struct {
	value float64
	g     int64 // rmin increment relative to the previous tuple
	delta int64 // rmax - rmin for this tuple
}

// GK is a Greenwald–Khanna quantile summary for float64 observations.
// The zero value is not usable; construct with New or NewWithSize.
//
// GK is not safe for concurrent mutation.
type GK struct {
	eps     float64
	tuples  []tuple
	n       int64
	buf     []float64 // pending unsorted inserts
	bufCap  int
	ordered bool // buf already sorted (used by flush)
}

// New returns a sketch answering rank queries within eps*n.
// eps must be in (0, 0.5].
func New(eps float64) *GK {
	if !(eps > 0 && eps <= 0.5) {
		invariant.Failf("quantile: eps %v out of (0, 0.5]", eps)
	}
	bufCap := int(1.0/(2.0*eps)) + 1
	if bufCap < 16 {
		bufCap = 16
	}
	return &GK{eps: eps, bufCap: bufCap}
}

// NewWithSize returns a sketch whose accuracy corresponds to a summary of
// roughly m retained points, i.e. eps = 1/m. This mirrors the paper's
// "size of quantile sketch" hyper-parameter (default 128).
func NewWithSize(m int) *GK {
	if m < 2 {
		invariant.Fail("quantile: size must be at least 2")
	}
	return New(1.0 / float64(m))
}

// Epsilon returns the sketch's rank error bound fraction.
func (s *GK) Epsilon() float64 { return s.eps }

// Count returns the number of values inserted so far.
func (s *GK) Count() int64 { return s.n + int64(len(s.buf)) }

// SummarySize returns the number of tuples currently retained (after
// flushing pending inserts). It is the sketch's space footprint in entries.
func (s *GK) SummarySize() int {
	s.flush()
	return len(s.tuples)
}

// Insert adds one observation to the sketch. NaN values are rejected
// because they have no rank.
func (s *GK) Insert(v float64) {
	if math.IsNaN(v) {
		invariant.Fail("quantile: cannot insert NaN")
	}
	s.buf = append(s.buf, v)
	s.ordered = false
	if len(s.buf) >= s.bufCap {
		s.flush()
	}
}

// InsertAll adds every value in vs.
func (s *GK) InsertAll(vs []float64) {
	for _, v := range vs {
		s.Insert(v)
	}
}

// flush merges the pending buffer into the summary and prunes.
func (s *GK) flush() {
	if len(s.buf) == 0 {
		return
	}
	if !s.ordered {
		sort.Float64s(s.buf)
		s.ordered = true
	}
	// Merge the sorted buffer into the tuple list. A batch insert of sorted
	// values is equivalent to repeated single inserts with delta chosen as
	// in GK: delta = floor(2*eps*n) - 1 for interior points, 0 at extremes.
	out := make([]tuple, 0, len(s.tuples)+len(s.buf))
	i, j := 0, 0
	for i < len(s.tuples) || j < len(s.buf) {
		if j >= len(s.buf) {
			out = append(out, s.tuples[i])
			i++
			continue
		}
		if i >= len(s.tuples) || s.buf[j] < s.tuples[i].value {
			v := s.buf[j]
			s.n++
			var delta int64
			// Extremes must be exact for min/max queries to be exact.
			atEdge := (i == 0 && len(out) == 0) || (i >= len(s.tuples) && j == len(s.buf)-1)
			if !atEdge {
				delta = int64(2*s.eps*float64(s.n)) - 1
				if delta < 0 {
					delta = 0
				}
			}
			out = append(out, tuple{value: v, g: 1, delta: delta})
			j++
			continue
		}
		out = append(out, s.tuples[i])
		i++
	}
	s.tuples = out
	s.buf = s.buf[:0]
	s.prune()
}

// prune implements GK's COMPRESS: adjacent tuples are merged while the
// invariant g_i + g_{i+1} + delta_{i+1} < 2*eps*n holds, keeping the
// summary small without violating the error bound.
func (s *GK) prune() {
	if len(s.tuples) < 3 {
		return
	}
	threshold := int64(2 * s.eps * float64(s.n))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	for k := 1; k < len(s.tuples)-1; k++ {
		t := s.tuples[k]
		last := &out[len(out)-1]
		// Never merge into the first tuple: the minimum must stay exact.
		if len(out) > 1 && last.g+t.g+t.delta <= threshold && last.delta >= t.delta {
			// Absorb the previous tuple into t.
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Query returns a value whose rank is within eps*n of phi*n, for
// phi in [0, 1]. Query(0) returns the exact minimum and Query(1) the exact
// maximum. It returns an error if the sketch is empty.
func (s *GK) Query(phi float64) (float64, error) {
	if phi < 0 || phi > 1 {
		return 0, fmt.Errorf("quantile: phi %v out of [0,1]", phi)
	}
	s.flush()
	if len(s.tuples) == 0 {
		return 0, errors.New("quantile: empty sketch")
	}
	if phi == 0 {
		return s.tuples[0].value, nil
	}
	if phi >= 1 { // validated phi <= 1 above; exact top rank
		return s.tuples[len(s.tuples)-1].value, nil
	}
	target := int64(math.Ceil(phi * float64(s.n)))
	tol := int64(math.Ceil(s.eps * float64(s.n)))
	var rmin int64
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].delta
		if target-rmin <= tol && rmax-target <= tol {
			return s.tuples[i].value, nil
		}
	}
	// Fallback: the last tuple always satisfies rank n.
	return s.tuples[len(s.tuples)-1].value, nil
}

// MustQuery is Query but panics on error; for use after a known-nonempty
// build phase.
func (s *GK) MustQuery(phi float64) float64 {
	v, err := s.Query(phi)
	if err != nil {
		panic(err)
	}
	return v
}

// Splits returns the q+1 split points
// {rank(0), rank(1/q), ..., rank((q-1)/q), rank(1)} that divide the inserted
// values into q buckets of (approximately) equal population, exactly as
// SketchML's Step 1 "Quantile Split" prescribes.
func (s *GK) Splits(q int) ([]float64, error) {
	if q < 1 {
		return nil, fmt.Errorf("quantile: bucket count %d < 1", q)
	}
	s.flush()
	if len(s.tuples) == 0 {
		return nil, errors.New("quantile: empty sketch")
	}
	splits := make([]float64, q+1)
	for i := 0; i <= q; i++ {
		v, err := s.Query(float64(i) / float64(q))
		if err != nil {
			return nil, err
		}
		splits[i] = v
	}
	// Enforce monotonicity (approximate answers can tie or invert within
	// tolerance); downstream bucket search requires non-decreasing splits.
	for i := 1; i <= q; i++ {
		if splits[i] < splits[i-1] {
			splits[i] = splits[i-1]
		}
	}
	return splits, nil
}

// Merge combines another summary into s (the paper's "merge" operation).
// After merging, rank queries on s reflect the union of both streams with
// error bounded by epsA + epsB. The other sketch is left unchanged.
func (s *GK) Merge(other *GK) {
	if other == nil {
		return
	}
	s.flush()
	other.flush()
	if len(other.tuples) == 0 {
		return
	}
	if len(s.tuples) == 0 {
		s.tuples = append([]tuple(nil), other.tuples...)
		s.n = other.n
		if other.eps > s.eps {
			s.eps = other.eps
		}
		return
	}

	// Work in explicit (rmin, rmax) space, following Greenwald & Khanna's
	// combine operation: for a tuple x from A placed between B-neighbours
	// yprev and ynext,
	//   rmin'(x) = rminA(x) + rminB(yprev)
	//   rmax'(x) = rmaxA(x) + rmaxB(ynext) - 1
	// (with the obvious adjustments when a neighbour is absent).
	type rt struct {
		value      float64
		rmin, rmax int64
	}
	expand := func(ts []tuple) []rt {
		out := make([]rt, len(ts))
		var rmin int64
		for i, t := range ts {
			rmin += t.g
			out[i] = rt{value: t.value, rmin: rmin, rmax: rmin + t.delta}
		}
		return out
	}
	a, b := expand(s.tuples), expand(other.tuples)

	merged := make([]rt, 0, len(a)+len(b))
	mergeOne := func(x rt, other []rt, oi int) rt {
		// other[oi-1] is the last element of the other summary with value
		// <= x.value; other[oi] is the next one.
		var r rt
		r.value = x.value
		if oi > 0 {
			r.rmin = x.rmin + other[oi-1].rmin
		} else {
			r.rmin = x.rmin
		}
		if oi < len(other) {
			r.rmax = x.rmax + other[oi].rmax - 1
		} else {
			r.rmax = x.rmax + other[len(other)-1].rmax
		}
		return r
	}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b), i < len(a) && a[i].value <= b[j].value:
			merged = append(merged, mergeOne(a[i], b, j))
			i++
		default:
			merged = append(merged, mergeOne(b[j], a, i))
			j++
		}
	}

	// Convert back to (g, delta) form.
	ts := make([]tuple, len(merged))
	var prevRmin int64
	for k, m := range merged {
		if m.rmax < m.rmin {
			m.rmax = m.rmin
		}
		ts[k] = tuple{value: m.value, g: m.rmin - prevRmin, delta: m.rmax - m.rmin}
		prevRmin = m.rmin
	}
	// First and last must be exact extremes.
	ts[0].delta = 0
	ts[len(ts)-1].delta = 0

	s.tuples = ts
	s.n += other.n
	// Merging two ε-summaries yields (in the worst case) an (εA+εB)-summary.
	s.eps += other.eps
	if s.eps > 0.5 {
		s.eps = 0.5
	}
	s.prune()
}

// Reset empties the sketch for reuse, keeping its accuracy configuration.
func (s *GK) Reset() {
	s.tuples = s.tuples[:0]
	s.buf = s.buf[:0]
	s.n = 0
}

// Rank returns the approximate fraction of inserted values that are <= v
// (the empirical CDF at v), within the sketch's epsilon. Returns an error
// on an empty sketch.
func (s *GK) Rank(v float64) (float64, error) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, errors.New("quantile: empty sketch")
	}
	var rmin int64
	var below int64
	for i := range s.tuples {
		rmin += s.tuples[i].g
		if s.tuples[i].value <= v {
			below = rmin
		} else {
			break
		}
	}
	return float64(below) / float64(s.n), nil
}
