package minmax

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertQueryNoCollisions(t *testing.T) {
	// Wide sketch, few keys: queries must be exact.
	s := New(2, 1<<14, 42)
	for k := uint64(0); k < 100; k++ {
		s.Insert(k, uint16(k%200))
	}
	for k := uint64(0); k < 100; k++ {
		got, ok := s.Query(k)
		if !ok {
			t.Fatalf("Query(%d): not found", k)
		}
		if got != uint16(k%200) {
			t.Errorf("Query(%d) = %d, want %d", k, got, k%200)
		}
	}
}

func TestNeverOverestimates(t *testing.T) {
	// The defining property (Section 3.3): the queried index for an inserted
	// key never exceeds the inserted index, no matter how heavy collisions.
	rng := rand.New(rand.NewSource(1))
	s := New(2, 64, 7) // deliberately tiny -> constant collisions
	truth := map[uint64]uint16{}
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(2000))
		idx := uint16(rng.Intn(256))
		if old, seen := truth[k]; !seen || idx < old {
			// Re-inserting the same key with several indexes models nothing
			// in the codec (each key is inserted once), but keep the min as
			// ground truth for the invariant check.
			truth[k] = idx
		}
		s.Insert(k, idx)
	}
	for k, want := range truth {
		got, ok := s.Query(k)
		if !ok {
			t.Fatalf("Query(%d): not found", k)
		}
		if got > want {
			t.Fatalf("Query(%d) = %d overestimates inserted min %d", k, got, want)
		}
	}
}

func TestTheoremA4BinHoldsMinimum(t *testing.T) {
	// Theorem A.4: after any insertion sequence, each bin equals the minimum
	// index among keys hashed to it. Verify against a brute-force model.
	rng := rand.New(rand.NewSource(2))
	const rows, cols = 3, 32
	s := New(rows, cols, 99)
	model := make([]uint16, rows*cols)
	for i := range model {
		model[i] = Empty
	}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(500))
		idx := uint16(rng.Intn(100))
		s.Insert(k, idx)
		for r := 0; r < rows; r++ {
			bin := r*cols + s.family.Index(r, k)
			if idx < model[bin] {
				model[bin] = idx
			}
		}
	}
	for i := range model {
		if s.cells[i] != model[i] {
			t.Fatalf("bin %d = %d, model says %d", i, s.cells[i], model[i])
		}
	}
}

func TestQueryUnknownKey(t *testing.T) {
	s := New(2, 1<<12, 5)
	if _, ok := s.Query(12345); ok {
		t.Error("query on empty sketch should report not found")
	}
	s.Insert(1, 3)
	// A different key in a huge sketch should (almost surely) miss all
	// populated bins.
	misses := 0
	for k := uint64(100); k < 200; k++ {
		if _, ok := s.Query(k); !ok {
			misses++
		}
	}
	if misses < 95 {
		t.Errorf("only %d/100 unknown keys reported not-found", misses)
	}
}

func TestMaxQueryPicksClosest(t *testing.T) {
	// With s rows, the max of the (all underestimating) candidates is the
	// closest to truth. Statistically check 2-row beats 1-row on accuracy.
	rng := rand.New(rand.NewSource(3))
	type cfg struct{ rows int }
	errSum := map[int]int{}
	for _, c := range []cfg{{1}, {2}, {4}} {
		s := New(c.rows, 512, 11)
		truth := map[uint64]uint16{}
		for k := uint64(0); k < 2000; k++ {
			idx := uint16(rng.Intn(64))
			truth[k] = idx
			s.Insert(k, idx)
		}
		for k, want := range truth {
			got, _ := s.Query(k)
			errSum[c.rows] += int(want) - int(got)
		}
	}
	if errSum[2] > errSum[1] {
		t.Errorf("2 rows (err %d) should not be worse than 1 row (err %d)", errSum[2], errSum[1])
	}
	if errSum[4] > errSum[2] {
		t.Errorf("4 rows (err %d) should not be worse than 2 rows (err %d)", errSum[4], errSum[2])
	}
}

func TestReset(t *testing.T) {
	s := New(2, 16, 1)
	s.Insert(5, 9)
	s.Reset()
	if _, ok := s.Query(5); ok {
		t.Error("Reset did not clear sketch")
	}
	if s.Inserted() != 0 {
		t.Error("Reset did not clear insert counter")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, maxIdx := range []int{31, 254, 255, 1000} {
		s := New(3, 128, 77)
		rng := rand.New(rand.NewSource(4))
		for k := uint64(0); k < 300; k++ {
			s.Insert(k, uint16(rng.Intn(maxIdx+1)))
		}
		data, err := s.AppendBinary(nil, maxIdx)
		if err != nil {
			t.Fatalf("maxIdx=%d: %v", maxIdx, err)
		}
		if len(data) != s.SizeBytes(maxIdx) {
			t.Errorf("maxIdx=%d: len=%d, SizeBytes=%d", maxIdx, len(data), s.SizeBytes(maxIdx))
		}
		got, used, err := DecodeBinary(data, 77)
		if err != nil {
			t.Fatalf("maxIdx=%d decode: %v", maxIdx, err)
		}
		if used != len(data) {
			t.Errorf("maxIdx=%d: consumed %d of %d bytes", maxIdx, used, len(data))
		}
		if !bytes.Equal(cellBytes(got), cellBytes(s)) {
			t.Errorf("maxIdx=%d: cells differ after round trip", maxIdx)
		}
		for k := uint64(0); k < 300; k++ {
			a, aok := s.Query(k)
			b, bok := got.Query(k)
			if a != b || aok != bok {
				t.Fatalf("maxIdx=%d: query mismatch at key %d", maxIdx, k)
			}
		}
	}
}

func cellBytes(s *Sketch) []byte {
	out := make([]byte, 0, len(s.cells)*2)
	for _, c := range s.cells {
		out = append(out, byte(c), byte(c>>8))
	}
	return out
}

func TestOneByteSerializationSmaller(t *testing.T) {
	s := New(2, 1000, 3)
	small := s.SizeBytes(100)  // fits 1 byte
	large := s.SizeBytes(1000) // needs 2 bytes
	if small >= large {
		t.Errorf("1-byte cells (%d) should be smaller than 2-byte (%d)", small, large)
	}
}

func TestMarshalRejectsOverflow(t *testing.T) {
	s := New(1, 8, 0)
	s.Insert(1, 300)
	if _, err := s.AppendBinary(nil, 100); err == nil {
		t.Error("expected error: stored index exceeds declared max")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeBinary([]byte{1, 2, 3}, 0); err == nil {
		t.Error("truncated header should error")
	}
	s := New(2, 8, 0)
	data, _ := s.AppendBinary(nil, 10)
	if _, _, err := DecodeBinary(data[:len(data)-1], 0); err == nil {
		t.Error("truncated body should error")
	}
	bad := append([]byte(nil), data...)
	bad[12] = 7 // invalid cell width
	if _, _, err := DecodeBinary(bad, 0); err == nil {
		t.Error("bad cell width should error")
	}
}

func TestGroupedRouting(t *testing.T) {
	g := NewGrouped(2, 800, 256, 8, 42)
	if g.NumGroups() != 8 {
		t.Fatalf("NumGroups = %d, want 8", g.NumGroups())
	}
	if g.BucketsPerGroup() != 32 {
		t.Fatalf("BucketsPerGroup = %d, want 32", g.BucketsPerGroup())
	}
	cases := []struct{ bucket, group int }{
		{0, 0}, {31, 0}, {32, 1}, {255, 7}, {128, 4},
	}
	for _, c := range cases {
		if got := g.GroupOf(c.bucket); got != c.group {
			t.Errorf("GroupOf(%d) = %d, want %d", c.bucket, got, c.group)
		}
	}
}

func TestGroupedInsertQuery(t *testing.T) {
	g := NewGrouped(2, 4096, 256, 8, 13)
	rng := rand.New(rand.NewSource(5))
	type rec struct {
		grp    int
		bucket int
	}
	truth := map[uint64]rec{}
	for k := uint64(0); k < 500; k++ {
		b := rng.Intn(256)
		grp := g.Insert(k, b)
		truth[k] = rec{grp, b}
	}
	for k, want := range truth {
		got, ok := g.Query(want.grp, k)
		if !ok {
			t.Fatalf("Query(%d) not found", k)
		}
		if got > want.bucket {
			t.Fatalf("grouped query overestimates: key %d got %d want <= %d", k, got, want.bucket)
		}
		// Error is bounded by group width.
		if want.bucket-got >= g.MaxError() {
			t.Fatalf("error %d >= MaxError %d", want.bucket-got, g.MaxError())
		}
	}
}

func TestGroupedErrorBoundedByGroupWidth(t *testing.T) {
	// The whole point of grouping: with r groups the max index error is q/r.
	// Compare worst-case error of r=1 vs r=8 under heavy collisions.
	worst := func(numGroups int) int {
		g := NewGrouped(2, 64, 256, numGroups, 7) // tiny -> collisions
		rng := rand.New(rand.NewSource(6))
		truth := map[uint64]struct{ grp, b int }{}
		for k := uint64(0); k < 3000; k++ {
			b := rng.Intn(256)
			grp := g.Insert(k, b)
			truth[k] = struct{ grp, b int }{grp, b}
		}
		w := 0
		for k, tr := range truth {
			got, ok := g.Query(tr.grp, k)
			if !ok {
				continue
			}
			if e := tr.b - got; e > w {
				w = e
			}
		}
		return w
	}
	w1, w8 := worst(1), worst(8)
	if w8 >= 32 {
		t.Errorf("r=8 worst error %d, want < 32", w8)
	}
	if w1 <= w8 {
		t.Logf("note: r=1 worst error %d, r=8 %d (expected r=1 larger)", w1, w8)
	}
}

func TestGroupedMarshalRoundTrip(t *testing.T) {
	g := NewGrouped(2, 512, 256, 8, 21)
	rng := rand.New(rand.NewSource(7))
	keys := map[uint64]int{}
	for k := uint64(0); k < 400; k++ {
		b := rng.Intn(256)
		keys[k] = g.Insert(k, b)
	}
	data, err := g.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != g.SizeBytes() {
		t.Errorf("len=%d, SizeBytes=%d", len(data), g.SizeBytes())
	}
	got, used, err := DecodeGrouped(data, 21)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(data) {
		t.Errorf("consumed %d of %d", used, len(data))
	}
	for k, grp := range keys {
		a, aok := g.Query(grp, k)
		b, bok := got.Query(grp, k)
		if a != b || aok != bok {
			t.Fatalf("grouped query mismatch at key %d: (%d,%v) vs (%d,%v)", k, a, aok, b, bok)
		}
	}
}

func TestGroupedQueryBadGroup(t *testing.T) {
	g := NewGrouped(1, 8, 16, 4, 0)
	if _, ok := g.Query(-1, 5); ok {
		t.Error("negative group should miss")
	}
	if _, ok := g.Query(99, 5); ok {
		t.Error("out-of-range group should miss")
	}
}

func TestGroupedMoreGroupsThanBuckets(t *testing.T) {
	g := NewGrouped(1, 16, 4, 100, 0)
	if g.NumGroups() != 4 {
		t.Errorf("NumGroups = %d, want clamped to 4", g.NumGroups())
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 4, 0) },
		func() { New(4, 0, 0) },
		func() { NewGrouped(1, 4, 0, 1, 0) },
		func() { NewGrouped(1, 4, 8, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestInsertRejectsHugeIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on index > MaxIndex")
		}
	}()
	New(1, 4, 0).Insert(1, Empty)
}

// Property: underestimation is preserved under any interleaving of inserts.
func TestQuickOneSidedError(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(2, 32, uint64(seed))
		type kv struct {
			k uint64
			v uint16
		}
		var items []kv
		for i := 0; i < 200; i++ {
			it := kv{uint64(rng.Intn(100)), uint16(rng.Intn(50))}
			items = append(items, it)
			s.Insert(it.k, it.v)
		}
		minOf := map[uint64]uint16{}
		for _, it := range items {
			if m, ok := minOf[it.k]; !ok || it.v < m {
				minOf[it.k] = it.v
			}
		}
		for k, m := range minOf {
			got, ok := s.Query(k)
			if !ok || got > m {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(2, 1<<16, 42)
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i), uint16(i&255))
	}
}

func BenchmarkQuery(b *testing.B) {
	s := New(2, 1<<16, 42)
	for i := 0; i < 1<<16; i++ {
		s.Insert(uint64(i), uint16(i&255))
	}
	b.ResetTimer()
	var sink uint16
	for i := 0; i < b.N; i++ {
		sink, _ = s.Query(uint64(i))
	}
	_ = sink
}

func TestAppendixA2CorrectnessRate(t *testing.T) {
	// Appendix A.2.2 derives the expected fraction of exactly-answered
	// queries. In our min-insert/max-query orientation, the query for the
	// l-th smallest index is exact iff in at least one row no element with
	// a smaller index shares its bin:
	//   P(exact for l) = 1 - (1 - (1-1/w)^(l-1))^s
	// The empirical rate must not fall materially below the formula's mean.
	const (
		rows = 2
		cols = 64
		v    = 200 // distinct elements, distinct indexes
	)
	var formula float64
	for l := 1; l <= v; l++ {
		pRow := math.Pow(1-1.0/cols, float64(l-1))
		formula += 1 - math.Pow(1-pRow, rows)
	}
	formula /= v

	trials, exactSum := 30, 0.0
	for trial := 0; trial < trials; trial++ {
		s := New(rows, cols, uint64(trial)*977+3)
		for l := 0; l < v; l++ {
			s.Insert(uint64(l)*2654435761+uint64(trial), uint16(l))
		}
		exact := 0
		for l := 0; l < v; l++ {
			got, ok := s.Query(uint64(l)*2654435761 + uint64(trial))
			if ok && got == uint16(l) {
				exact++
			}
		}
		exactSum += float64(exact) / v
	}
	empirical := exactSum / float64(trials)
	if empirical < formula-0.05 {
		t.Errorf("empirical correctness rate %.3f below Appendix A.2 bound %.3f", empirical, formula)
	}
}
