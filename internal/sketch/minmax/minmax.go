// Package minmax implements MinMaxSketch, the new sketch algorithm proposed
// by SketchML (Section 3.3) for compressing the bucket indexes produced by
// quantile-bucket quantification.
//
// A MinMaxSketch looks like a Count-Min sketch — s hash tables of t bins —
// but resolves hash collisions entirely differently. Frequency sketches add
// on insert and take the minimum on query, which can only overestimate;
// overestimated bucket indexes decode to amplified gradients and make SGD
// diverge. MinMaxSketch instead stores values:
//
//   - Insert keeps the MINIMUM bucket index ever hashed into a bin, so a
//     collision can only decay the stored index (Theorem A.4: each bin holds
//     exactly the minimum index among the keys that map to it).
//   - Query returns the MAXIMUM candidate across the s rows, the one closest
//     to the original value given that every candidate is an underestimate.
//
// The result is one-sided, bounded error: queried indexes never exceed the
// inserted index, so decoded gradients shrink but never grow or flip
// direction (sign reversal is prevented separately by the codec's
// positive/negative separation). The Grouped variant divides the q buckets
// into r groups with an independent sketch per group, reducing the maximal
// index error from q to q/r (Section 3.3, Solution 2).
package minmax

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sketchml/internal/hashing"
	"sketchml/internal/invariant"
)

// Empty marks a bin that has never been written.
const Empty = math.MaxUint16

// MaxIndex is the largest storable bucket index.
const MaxIndex = math.MaxUint16 - 1

// Sketch is a single MinMaxSketch of rows hash tables with cols bins each.
type Sketch struct {
	rows, cols int
	seed       uint64
	cells      []uint16 // row-major; Empty means untouched
	family     *hashing.Family
	inserted   int
}

// New creates a MinMaxSketch with the given shape. All bins start Empty.
func New(rows, cols int, seed uint64) *Sketch {
	s := &Sketch{}
	s.Reshape(rows, cols, seed)
	return s
}

// Reshape reconfigures the sketch in place to rows × cols bins under seed,
// emptying every bin. Cell storage and the hash family are reused whenever
// capacity allows, so a decoder that rebuilds a sketch per message does not
// allocate once warm.
func (s *Sketch) Reshape(rows, cols int, seed uint64) {
	if rows <= 0 || cols <= 0 {
		invariant.Failf("minmax: invalid dimensions %dx%d", rows, cols)
	}
	n := rows * cols
	if cap(s.cells) >= n {
		s.cells = s.cells[:n]
	} else {
		//lint:allow hotpath-alloc grows reusable cell storage; amortized to zero once the decoder's sketch capacity warms up
		s.cells = make([]uint16, n)
	}
	if s.family != nil {
		s.family.Reshape(rows, cols, seed)
	} else {
		s.family = hashing.NewFamily(rows, cols, seed)
	}
	s.rows, s.cols, s.seed = rows, cols, seed
	s.inserted = 0
	for i := range s.cells {
		s.cells[i] = Empty
	}
}

// Rows returns the number of hash tables (the paper's s).
func (s *Sketch) Rows() int { return s.rows }

// Cols returns the number of bins per table (the paper's t).
func (s *Sketch) Cols() int { return s.cols }

// Inserted returns how many Insert calls the sketch has absorbed.
func (s *Sketch) Inserted() int { return s.inserted }

// Insert records (key, idx): in every row, the addressed bin keeps the
// minimum of its current content and idx (the paper's Min protocol).
func (s *Sketch) Insert(key uint64, idx uint16) {
	if idx > MaxIndex {
		invariant.Failf("minmax: index %d exceeds MaxIndex", idx)
	}
	for r := 0; r < s.rows; r++ {
		cell := &s.cells[r*s.cols+s.family.Index(r, key)]
		if idx < *cell {
			*cell = idx
		}
	}
	s.inserted++
}

// Query returns the recovered bucket index for key: the maximum non-empty
// candidate across rows (the paper's Max protocol). ok is false only when
// every addressed bin is still Empty, which cannot happen for a key that
// was inserted.
//
// For an inserted key the result never exceeds the inserted index
// (one-sided underestimation).
func (s *Sketch) Query(key uint64) (idx uint16, ok bool) {
	best := uint16(Empty)
	for r := 0; r < s.rows; r++ {
		c := s.cells[r*s.cols+s.family.Index(r, key)]
		if c == Empty {
			continue
		}
		if best == Empty || c > best {
			best = c
		}
	}
	if best == Empty {
		return 0, false
	}
	return best, true
}

// Reset empties every bin for reuse.
func (s *Sketch) Reset() {
	for i := range s.cells {
		s.cells[i] = Empty
	}
	s.inserted = 0
}

// cellWidth returns the serialized bytes per bin for a given maximum index.
func cellWidth(maxIdx int) int {
	if maxIdx < 0xFF { // 0xFF reserved as the 1-byte Empty sentinel
		return 1
	}
	return 2
}

// AppendBinary serializes the sketch, packing each bin into the fewest
// bytes that can hold indexes up to maxIdx (the paper's
// s×t×⌈log2(q)/8⌉-byte cost). maxIdx must cover every stored index.
func (s *Sketch) AppendBinary(dst []byte, maxIdx int) ([]byte, error) {
	if maxIdx < 0 || maxIdx > MaxIndex {
		return nil, fmt.Errorf("minmax: maxIdx %d out of range", maxIdx)
	}
	w := cellWidth(maxIdx)
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.rows))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.cols))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(maxIdx))
	hdr[12] = byte(w)
	dst = append(dst, hdr[:]...)
	for _, c := range s.cells {
		switch w {
		case 1:
			if c == Empty {
				dst = append(dst, 0xFF)
			} else if int(c) > maxIdx {
				return nil, fmt.Errorf("minmax: stored index %d exceeds declared max %d", c, maxIdx)
			} else {
				dst = append(dst, byte(c))
			}
		default:
			if c != Empty && int(c) > maxIdx {
				return nil, fmt.Errorf("minmax: stored index %d exceeds declared max %d", c, maxIdx)
			}
			dst = binary.LittleEndian.AppendUint16(dst, c)
		}
	}
	return dst, nil
}

// DecodeBinary parses a sketch serialized by AppendBinary, re-deriving the
// hash family from seed (the seed is agreed out of band by the codec and is
// not part of the wire format). It returns the decoded sketch and the
// number of bytes consumed.
func DecodeBinary(data []byte, seed uint64) (*Sketch, int, error) {
	return DecodeBinaryReuse(data, seed, nil)
}

// DecodeBinaryReuse is DecodeBinary with a caller-owned destination: when
// s is non-nil it is reshaped in place and returned, reusing its cell
// storage and hash family, so steady-state decoding allocates nothing
// once the sketch capacity matches the wire shape. A nil s allocates a
// fresh sketch, making the call equivalent to DecodeBinary.
func DecodeBinaryReuse(data []byte, seed uint64, s *Sketch) (*Sketch, int, error) {
	if len(data) < 13 {
		return nil, 0, errors.New("minmax: truncated header")
	}
	rows := int(binary.LittleEndian.Uint32(data[0:]))
	cols := int(binary.LittleEndian.Uint32(data[4:]))
	w := int(data[12])
	if rows <= 0 || cols <= 0 || rows > 1<<16 || cols > 1<<30 {
		return nil, 0, fmt.Errorf("minmax: implausible dimensions %dx%d", rows, cols)
	}
	if w != 1 && w != 2 {
		return nil, 0, fmt.Errorf("minmax: bad cell width %d", w)
	}
	need := 13 + rows*cols*w
	if len(data) < need {
		return nil, 0, fmt.Errorf("minmax: need %d bytes, have %d", need, len(data))
	}
	if s == nil {
		//lint:allow hotpath-alloc fresh-destination fallback; reuse callers pass a pooled sketch
		s = &Sketch{}
	}
	s.Reshape(rows, cols, seed)
	body := data[13:need]
	for i := range s.cells {
		if w == 1 {
			b := body[i]
			if b == 0xFF {
				s.cells[i] = Empty
			} else {
				s.cells[i] = uint16(b)
			}
		} else {
			s.cells[i] = binary.LittleEndian.Uint16(body[i*2:])
		}
	}
	return s, need, nil
}

// SizeBytes returns the serialized size for a given maximum index.
func (s *Sketch) SizeBytes(maxIdx int) int {
	return 13 + s.rows*s.cols*cellWidth(maxIdx)
}

// Grouped divides numBuckets bucket indexes into numGroups contiguous
// groups — [0, q/r), [q/r, 2q/r), … — with an independent MinMaxSketch per
// group storing group-relative indexes. This caps the worst-case decoded
// index error at q/r instead of q (Section 3.3, "Grouped MinMaxSketch").
//
// The caller is responsible for remembering which group each key went to
// (SketchML transmits per-group key lists, see internal/codec).
type Grouped struct {
	groups          []*Sketch
	numBuckets      int
	bucketsPerGroup int
}

// NewGrouped creates numGroups sketches of rows × ceil(totalCols/numGroups)
// bins each, covering bucket indexes [0, numBuckets).
func NewGrouped(rows, totalCols, numBuckets, numGroups int, seed uint64) *Grouped {
	if numGroups <= 0 || numBuckets <= 0 {
		invariant.Failf("minmax: invalid buckets=%d groups=%d", numBuckets, numGroups)
	}
	if numGroups > numBuckets {
		numGroups = numBuckets
	}
	colsPer := (totalCols + numGroups - 1) / numGroups
	if colsPer < 1 {
		colsPer = 1
	}
	g := &Grouped{
		groups:          make([]*Sketch, numGroups),
		numBuckets:      numBuckets,
		bucketsPerGroup: (numBuckets + numGroups - 1) / numGroups,
	}
	for i := range g.groups {
		// Each group gets an independent hash family via a derived seed.
		g.groups[i] = New(rows, colsPer, hashing.Mix64(uint64(i), seed))
	}
	return g
}

// NumGroups returns the number of group sketches (the paper's r).
func (g *Grouped) NumGroups() int { return len(g.groups) }

// BucketsPerGroup returns how many bucket indexes map to one group.
func (g *Grouped) BucketsPerGroup() int { return g.bucketsPerGroup }

// GroupOf returns the group that bucket belongs to.
func (g *Grouped) GroupOf(bucket int) int {
	if bucket < 0 || bucket >= g.numBuckets {
		invariant.Failf("minmax: bucket %d out of [0,%d)", bucket, g.numBuckets)
	}
	return bucket / g.bucketsPerGroup
}

// Insert records (key, bucket) into the bucket's group sketch and returns
// the group index the key was routed to.
func (g *Grouped) Insert(key uint64, bucket int) int {
	grp := g.GroupOf(bucket)
	g.groups[grp].Insert(key, uint16(bucket-grp*g.bucketsPerGroup))
	return grp
}

// Query recovers the bucket index of key, which is known (from the wire
// format's per-group key lists) to live in group grp.
func (g *Grouped) Query(grp int, key uint64) (bucket int, ok bool) {
	if grp < 0 || grp >= len(g.groups) {
		return 0, false
	}
	rel, ok := g.groups[grp].Query(key)
	if !ok {
		return 0, false
	}
	b := grp*g.bucketsPerGroup + int(rel)
	if b >= g.numBuckets {
		b = g.numBuckets - 1
	}
	return b, true
}

// MaxError returns the worst-case decoded index error, q/r.
func (g *Grouped) MaxError() int { return g.bucketsPerGroup }

// AppendBinary serializes every group sketch.
func (g *Grouped) AppendBinary(dst []byte) ([]byte, error) {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(g.groups)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.numBuckets))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(g.bucketsPerGroup))
	dst = append(dst, hdr[:]...)
	var err error
	for _, s := range g.groups {
		dst, err = s.AppendBinary(dst, g.bucketsPerGroup-1)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeGrouped parses a Grouped serialized by AppendBinary. Group seeds
// are re-derived from seed exactly as NewGrouped does.
func DecodeGrouped(data []byte, seed uint64) (*Grouped, int, error) {
	return DecodeGroupedReuse(data, seed, nil)
}

// DecodeGroupedReuse is DecodeGrouped with a caller-owned destination:
// when g is non-nil it is rebuilt in place and returned, reusing its
// group slice and every group sketch's storage, so steady-state decoding
// allocates nothing once capacities match the wire shape. A nil g
// allocates fresh, making the call equivalent to DecodeGrouped.
func DecodeGroupedReuse(data []byte, seed uint64, g *Grouped) (*Grouped, int, error) {
	if len(data) < 12 {
		return nil, 0, errors.New("minmax: truncated grouped header")
	}
	n := int(binary.LittleEndian.Uint32(data[0:]))
	numBuckets := int(binary.LittleEndian.Uint32(data[4:]))
	bpg := int(binary.LittleEndian.Uint32(data[8:]))
	if n <= 0 || n > 1<<16 || numBuckets <= 0 || bpg <= 0 {
		return nil, 0, fmt.Errorf("minmax: implausible grouped header n=%d q=%d bpg=%d", n, numBuckets, bpg)
	}
	if g == nil {
		//lint:allow hotpath-alloc fresh-destination fallback; reuse callers pass a pooled grouped sketch
		g = &Grouped{}
	}
	if cap(g.groups) >= n {
		// Reslicing up to cap revives sketch pointers parked beyond the
		// previous length, so shrink-then-grow cycles keep their storage.
		g.groups = g.groups[:n]
	} else {
		old := g.groups[:cap(g.groups)]
		//lint:allow hotpath-alloc grows reusable group storage, amortized to zero once warm; n is bounds-checked (≤ 1<<16) above
		g.groups = make([]*Sketch, n)
		copy(g.groups, old)
	}
	g.numBuckets = numBuckets
	g.bucketsPerGroup = bpg
	off := 12
	for i := 0; i < n; i++ {
		s, used, err := DecodeBinaryReuse(data[off:], hashing.Mix64(uint64(i), seed), g.groups[i])
		if err != nil {
			return nil, 0, fmt.Errorf("minmax: group %d: %w", i, err)
		}
		g.groups[i] = s
		off += used
	}
	return g, off, nil
}

// SkipGrouped returns the serialized length of a Grouped sketch at the
// head of data without building the sketches — every size is derivable
// from the fixed headers. Used to locate pane boundaries for parallel
// decoding. It validates headers exactly as DecodeGrouped/DecodeBinary do.
func SkipGrouped(data []byte) (int, error) {
	if len(data) < 12 {
		return 0, errors.New("minmax: truncated grouped header")
	}
	n := int(binary.LittleEndian.Uint32(data[0:]))
	numBuckets := int(binary.LittleEndian.Uint32(data[4:]))
	bpg := int(binary.LittleEndian.Uint32(data[8:]))
	if n <= 0 || n > 1<<16 || numBuckets <= 0 || bpg <= 0 {
		return 0, fmt.Errorf("minmax: implausible grouped header n=%d q=%d bpg=%d", n, numBuckets, bpg)
	}
	off := 12
	for i := 0; i < n; i++ {
		if len(data)-off < 13 {
			return 0, fmt.Errorf("minmax: group %d: truncated header", i)
		}
		rows := int(binary.LittleEndian.Uint32(data[off:]))
		cols := int(binary.LittleEndian.Uint32(data[off+4:]))
		w := int(data[off+12])
		if rows <= 0 || cols <= 0 || rows > 1<<16 || cols > 1<<30 {
			return 0, fmt.Errorf("minmax: group %d: implausible dimensions %dx%d", i, rows, cols)
		}
		if w != 1 && w != 2 {
			return 0, fmt.Errorf("minmax: group %d: bad cell width %d", i, w)
		}
		need := 13 + rows*cols*w
		if len(data)-off < need {
			return 0, fmt.Errorf("minmax: group %d: need %d bytes, have %d", i, need, len(data)-off)
		}
		off += need
	}
	return off, nil
}

// SizeBytes returns the total serialized size.
func (g *Grouped) SizeBytes() int {
	total := 12
	for _, s := range g.groups {
		total += s.SizeBytes(g.bucketsPerGroup - 1)
	}
	return total
}

// Reset empties every group sketch.
func (g *Grouped) Reset() {
	for _, s := range g.groups {
		s.Reset()
	}
}
