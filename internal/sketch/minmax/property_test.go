package minmax

import (
	"math/rand"
	"testing"

	"sketchml/internal/quantizer"
)

// TestQueryNeverAmplifies is the MinMaxSketch one-sided-error property on
// the raw structure: for every inserted (key, idx), Query must return ok
// with a result in [0, idx] — min-on-insert can only decay a stored index,
// max-on-query picks the least-decayed row (Theorem A.4). Heavy collision
// pressure (far more keys than bins) makes the bound do real work.
func TestQueryNeverAmplifies(t *testing.T) {
	for _, cfg := range []struct{ rows, cols, keys int }{
		{1, 64, 1000},  // brutal: one row, 16x overload
		{2, 256, 2000}, // the paper's default shape
		{4, 128, 4000},
	} {
		rng := rand.New(rand.NewSource(int64(cfg.rows*10000 + cfg.cols)))
		s := New(cfg.rows, cfg.cols, 99)
		inserted := map[uint64]uint16{}
		for len(inserted) < cfg.keys {
			k := rng.Uint64()
			idx := uint16(rng.Intn(256))
			if old, ok := inserted[k]; !ok || idx < old {
				inserted[k] = idx // the sketch keeps the min per key too
			}
			s.Insert(k, idx)
		}
		for k, idx := range inserted {
			got, ok := s.Query(k)
			if !ok {
				t.Fatalf("rows=%d cols=%d: inserted key %d not found", cfg.rows, cfg.cols, k)
			}
			if got > idx {
				t.Fatalf("rows=%d cols=%d: key %d recovered index %d > inserted %d (amplified)",
					cfg.rows, cfg.cols, k, got, idx)
			}
		}
	}
}

// TestGroupedRecoveryWithinGroup pins the grouped bound of Section 3.3: a
// recovered bucket stays inside the inserted bucket's group, at or below
// the inserted bucket — so the worst-case index error is q/r, never q.
func TestGroupedRecoveryWithinGroup(t *testing.T) {
	const q, r = 256, 8
	rng := rand.New(rand.NewSource(17))
	g := NewGrouped(2, 400, q, r, 5)
	type ins struct {
		key    uint64
		bucket int
	}
	var all []ins
	for i := 0; i < 2000; i++ {
		in := ins{key: rng.Uint64(), bucket: rng.Intn(q)}
		g.Insert(in.key, in.bucket)
		all = append(all, in)
	}
	for _, in := range all {
		grp := g.GroupOf(in.bucket)
		got, ok := g.Query(grp, in.key)
		if !ok {
			t.Fatalf("key %d lost", in.key)
		}
		lo := grp * g.BucketsPerGroup()
		if got < lo || got > in.bucket {
			t.Fatalf("key %d: recovered bucket %d outside [%d, %d] (group %d)",
				in.key, got, lo, in.bucket, grp)
		}
		if err := in.bucket - got; err >= g.MaxError() {
			t.Fatalf("key %d: index error %d >= MaxError %d", in.key, err, g.MaxError())
		}
	}
}

// TestRecoveredValuesWithinBucketAndSign replays the codec's full pane
// pipeline — quantile buckets over magnitudes, a grouped MinMaxSketch per
// sign pane — and checks the end-to-end value contract: every recovered
// value keeps its sign, lies inside its recovered bucket's [lo, hi] value
// range, and never exceeds the magnitude of the exact value's own bucket
// ceiling (decay-only, the property that keeps SGD convergent).
func TestRecoveredValuesWithinBucketAndSign(t *testing.T) {
	const n = 3000
	rng := rand.New(rand.NewSource(23))
	type entry struct {
		key uint64
		val float64 // signed original
		mag float64
	}
	panes := map[string][]entry{"pos": nil, "neg": nil}
	for i := 0; i < n; i++ {
		mag := rng.ExpFloat64() * 0.02
		if mag == 0 {
			continue
		}
		e := entry{key: rng.Uint64(), mag: mag}
		if rng.Intn(2) == 0 {
			e.val = mag
			panes["pos"] = append(panes["pos"], e)
		} else {
			e.val = -mag
			panes["neg"] = append(panes["neg"], e)
		}
	}
	for name, pane := range panes {
		t.Run(name, func(t *testing.T) {
			mags := make([]float64, len(pane))
			for i, e := range pane {
				mags[i] = e.mag
			}
			z, err := quantizer.BuildQuantile(mags, 64, 128)
			if err != nil {
				t.Fatal(err)
			}
			splits, means := z.Splits(), z.Means()
			g := NewGrouped(2, len(pane)/5, z.NumBuckets(), 8, 7)
			for _, e := range pane {
				g.Insert(e.key, z.Bucket(e.mag))
			}
			for _, e := range pane {
				exact := z.Bucket(e.mag)
				got, ok := g.Query(g.GroupOf(exact), e.key)
				if !ok {
					t.Fatalf("key %d lost", e.key)
				}
				rec := means[got]
				if name == "neg" {
					rec = -rec
				}
				// Sign pane separation: the recovered value may decay
				// toward zero but its direction is fixed.
				if rec*e.val < 0 {
					t.Fatalf("key %d: sign flipped, %g -> %g", e.key, e.val, rec)
				}
				// The recovered magnitude is the recovered bucket's mean,
				// which must sit inside that bucket's [lo, hi] split range.
				if m := means[got]; m < splits[got] || m > splits[got+1] {
					t.Fatalf("bucket %d mean %g outside [%g, %g]", got, m, splits[got], splits[got+1])
				}
				// Decay-only: recovered bucket <= exact bucket, and means
				// are monotone over magnitude buckets, so the recovered
				// magnitude never exceeds the exact bucket's ceiling.
				if got > exact {
					t.Fatalf("key %d: recovered bucket %d > exact %d", e.key, got, exact)
				}
				if means[got] > splits[exact+1] {
					t.Fatalf("key %d: recovered magnitude %g above exact bucket ceiling %g",
						e.key, means[got], splits[exact+1])
				}
			}
		})
	}
}
