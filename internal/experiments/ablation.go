package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/gradient"
	"sketchml/internal/keycoding"
	"sketchml/internal/quantizer"
	"sketchml/internal/sketch/countmin"
	"sketchml/internal/sketch/minmax"
	"sketchml/internal/stats"
)

// sampleGradient returns a realistic skewed gradient for ablations.
func sampleGradient(cfg Config, nnz int) *gradient.Sparse {
	d := dataset.KDD10Like(cfg.Seed)
	g := firstGradient(d, 0.1)
	if g.NNZ() > nnz {
		g.Keys = g.Keys[:nnz]
		g.Values = g.Values[:nnz]
	}
	return g
}

// AblationMinMaxVsCountMin contrasts the paper's min-insert/max-query
// strategy against the Count-Min additive strategy on the same bucket
// indexes (Section 3.3's motivation): additive estimates overestimate and
// would amplify gradients; MinMax only ever decays them.
func AblationMinMaxVsCountMin(cfg Config) (*Report, error) {
	g := sampleGradient(cfg, 8000)
	vals := make([]float64, g.NNZ())
	for i, v := range g.Values {
		vals[i] = math.Abs(v)
	}
	z, err := quantizer.BuildQuantile(vals, 256, 128)
	if err != nil {
		return nil, err
	}
	rows, cols := 2, g.NNZ()/5

	mm := minmax.New(rows, cols, 42)
	cm := countmin.New(rows, cols, 42)
	truth := make([]int, g.NNZ())
	for i, k := range g.Keys {
		b := z.Bucket(vals[i])
		truth[i] = b
		mm.Insert(k, uint16(b))
		cm.InsertWeighted(k, uint64(b)+1) // additive strategy stores index+1
	}
	var mmOver, cmOver, mmUnder int
	var mmErr, cmErr float64
	for i, k := range g.Keys {
		got, ok := mm.Query(k)
		if !ok {
			return nil, fmt.Errorf("minmax lost key %d", k)
		}
		if int(got) > truth[i] {
			mmOver++
		}
		if int(got) < truth[i] {
			mmUnder++
		}
		mmErr += math.Abs(float64(int(got) - truth[i]))

		cmGot := int(cm.Query(k)) - 1
		if cmGot > truth[i] {
			cmOver++
		}
		cmErr += math.Abs(float64(cmGot - truth[i]))
	}
	n := float64(g.NNZ())
	table := stats.NewTable("strategy", "overestimated %", "mean |index error|")
	table.AddRow("MinMaxSketch", 100*float64(mmOver)/n, mmErr/n)
	table.AddRow("Count-Min (additive)", 100*float64(cmOver)/n, cmErr/n)
	return &Report{
		Text: table.String() + fmt.Sprintf("\nMinMax underestimated %.1f%% (benign decay), overestimated %.2f%% (must be 0).\n",
			100*float64(mmUnder)/n, 100*float64(mmOver)/n),
		Metrics: map[string]float64{
			"minmax_over_pct":   100 * float64(mmOver) / n,
			"countmin_over_pct": 100 * float64(cmOver) / n,
			"minmax_mean_err":   mmErr / n,
			"countmin_mean_err": cmErr / n,
		},
	}, nil
}

// AblationSignSeparation measures the reversed-gradient rate (Figure 6's
// problem) with and without positive/negative separation under the full
// quantize-sketch-decode pipeline.
func AblationSignSeparation(cfg Config) (*Report, error) {
	g := sampleGradient(cfg, 8000)

	// Joint pipeline: one quantizer over signed values, one sketch; decayed
	// indexes can land in buckets of the opposite sign.
	joint, err := quantizer.BuildQuantile(g.Values, 256, 128)
	if err != nil {
		return nil, err
	}
	sk := minmax.New(2, g.NNZ()/5, 7)
	for i, k := range g.Keys {
		sk.Insert(k, uint16(joint.Bucket(g.Values[i])))
	}
	jointReversed := 0
	for i, k := range g.Keys {
		idx, ok := sk.Query(k)
		if !ok {
			continue
		}
		dec := joint.Mean(int(idx))
		if dec*g.Values[i] < 0 {
			jointReversed++
		}
	}

	// Separated pipeline: the shipped codec path.
	signed, err := quantizer.BuildSigned(g.Values, 256, 128)
	if err != nil {
		return nil, err
	}
	pos := minmax.New(2, g.NNZ()/5, 8)
	neg := minmax.New(2, g.NNZ()/5, 9)
	for i, k := range g.Keys {
		isNeg, idx := signed.Bucket(g.Values[i])
		if isNeg {
			neg.Insert(k, uint16(idx))
		} else {
			pos.Insert(k, uint16(idx))
		}
	}
	sepReversed := 0
	for i, k := range g.Keys {
		isNeg, _ := signed.Bucket(g.Values[i])
		var idx uint16
		var ok bool
		if isNeg {
			idx, ok = neg.Query(k)
		} else {
			idx, ok = pos.Query(k)
		}
		if !ok {
			continue
		}
		dec := signed.Mean(isNeg, int(idx))
		if dec*g.Values[i] < 0 {
			sepReversed++
		}
	}

	n := float64(g.NNZ())
	table := stats.NewTable("pipeline", "reversed gradients %")
	table.AddRow("joint quantization", 100*float64(jointReversed)/n)
	table.AddRow("pos/neg separation", 100*float64(sepReversed)/n)
	return &Report{
		Text: table.String(),
		Metrics: map[string]float64{
			"joint_reversed_pct":     100 * float64(jointReversed) / n,
			"separated_reversed_pct": 100 * float64(sepReversed) / n,
		},
	}, nil
}

// AblationGrouping measures how the grouped sketch bounds decoded index
// error: worst-case and mean error for r in {1, 4, 8, 16} at equal total
// sketch size.
func AblationGrouping(cfg Config) (*Report, error) {
	g := sampleGradient(cfg, 8000)
	vals := make([]float64, g.NNZ())
	for i, v := range g.Values {
		vals[i] = math.Abs(v)
	}
	const q = 256
	z, err := quantizer.BuildQuantile(vals, q, 128)
	if err != nil {
		return nil, err
	}
	totalCols := g.NNZ() / 5

	table := stats.NewTable("groups r", "bound q/r", "worst |err|", "mean |err|")
	metrics := map[string]float64{}
	for _, r := range []int{1, 4, 8, 16} {
		grp := minmax.NewGrouped(2, totalCols, q, r, 11)
		where := make([]int, g.NNZ())
		truth := make([]int, g.NNZ())
		for i, k := range g.Keys {
			b := z.Bucket(vals[i])
			truth[i] = b
			where[i] = grp.Insert(k, b)
		}
		var worst int
		var sum float64
		for i, k := range g.Keys {
			got, ok := grp.Query(where[i], k)
			if !ok {
				return nil, fmt.Errorf("grouped sketch lost key %d", k)
			}
			e := truth[i] - got
			if e < 0 {
				e = -e
			}
			if e > worst {
				worst = e
			}
			sum += float64(e)
		}
		mean := sum / float64(g.NNZ())
		table.AddRow(r, q/r, worst, mean)
		metrics[fmt.Sprintf("r%d_worst", r)] = float64(worst)
		metrics[fmt.Sprintf("r%d_mean", r)] = mean
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// AblationQuantileVsUniform compares mean relative quantization error of
// equal-population (quantile) vs equal-width (uniform/ZipML) buckets on a
// real skewed gradient, across bucket budgets.
func AblationQuantileVsUniform(cfg Config) (*Report, error) {
	g := sampleGradient(cfg, 10000)
	table := stats.NewTable("buckets", "quantile rel err", "uniform rel err", "uniform/quantile")
	metrics := map[string]float64{}
	for _, q := range []int{16, 64, 256} {
		zq, err := quantizer.BuildQuantile(g.Values, q, 256)
		if err != nil {
			return nil, err
		}
		zu, err := quantizer.BuildUniform(g.Values, q)
		if err != nil {
			return nil, err
		}
		// Relative error over values of meaningful magnitude; denominators
		// below 1e-6 of the max are skipped (cancellation artifacts in the
		// batch sum would otherwise dominate the mean with 1e11-scale
		// ratios).
		floor := g.MaxAbs() * 1e-6
		rel := func(enc func(float64) float64) float64 {
			var s float64
			n := 0
			for _, v := range g.Values {
				if math.Abs(v) > floor {
					s += math.Abs(v-enc(v)) / math.Abs(v)
					n++
				}
			}
			return s / float64(n)
		}
		rq, ru := rel(zq.Encode), rel(zu.Encode)
		table.AddRow(q, rq, ru, ru/rq)
		metrics[fmt.Sprintf("q%d_quantile", q)] = rq
		metrics[fmt.Sprintf("q%d_uniform", q)] = ru
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// AblationKeyCodecs compares key encodings at several sparsity levels:
// delta-binary (the paper's), uvarint deltas, a dense bitmap, and the raw
// 4-byte baseline.
func AblationKeyCodecs(cfg Config) (*Report, error) {
	const dim = 1 << 22
	rng := rand.New(rand.NewSource(cfg.Seed))
	table := stats.NewTable("nnz", "delta B/key", "varint B/key", "bitmap B/key", "raw B/key")
	metrics := map[string]float64{}
	for _, nnz := range []int{2000, 20000, 200000} {
		seen := map[uint64]bool{}
		for len(seen) < nnz {
			seen[uint64(rng.Int63n(dim))] = true
		}
		keys := make([]uint64, 0, nnz)
		for k := range seen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		deltaSize, err := keycoding.DeltaSize(keys)
		if err != nil {
			return nil, err
		}
		varintData, err := keycoding.AppendVarint(nil, keys)
		if err != nil {
			return nil, err
		}
		n := float64(nnz)
		dpk := float64(deltaSize) / n
		vpk := float64(len(varintData)) / n
		bpk := float64(keycoding.BitmapSize(dim)) / n
		table.AddRow(nnz, dpk, vpk, bpk, 4.0)
		key := fmt.Sprintf("nnz%d", nnz)
		metrics[key+"_delta"] = dpk
		metrics[key+"_varint"] = vpk
		metrics[key+"_bitmap"] = bpk
	}
	var b strings.Builder
	b.WriteString(table.String())
	b.WriteString("\nbitmap cost is constant in D, so it only wins at extreme density (Appendix A.3).\n")
	return &Report{Text: b.String(), Metrics: metrics}, nil
}

// AblationSketchAlgo compares the two quantile sketch implementations (GK,
// the classical algorithm, and KLL, the algorithm behind the DataSketches
// library the paper's prototype uses) as the split finder inside the full
// codec: split quality (reconstruction error) and encode cost.
func AblationSketchAlgo(cfg Config) (*Report, error) {
	g := sampleGradient(cfg, 10000)
	table := stats.NewTable("sketch", "recon L2 err", "msg bytes", "encode µs")
	metrics := map[string]float64{}
	for _, a := range []struct {
		name string
		algo quantizer.SketchAlgo
	}{
		{"GK", quantizer.GKAlgo},
		{"KLL", quantizer.KLLAlgo},
	} {
		opts := codec.DefaultOptions()
		opts.Algo = a.algo
		c := codec.MustSketchML(opts)

		start := time.Now()
		const reps = 20
		var data []byte
		var err error
		for i := 0; i < reps; i++ {
			data, err = c.Encode(g)
			if err != nil {
				return nil, err
			}
		}
		encodeUs := float64(time.Since(start).Microseconds()) / reps
		dec, err := c.Decode(data)
		if err != nil {
			return nil, err
		}
		l2 := math.Sqrt(gradient.SquaredDistance(g, dec))
		table.AddRow(a.name, l2, len(data), encodeUs)
		metrics[a.name+"_l2"] = l2
		metrics[a.name+"_bytes"] = float64(len(data))
		metrics[a.name+"_encode_us"] = encodeUs
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}
