package experiments

import (
	"fmt"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/model"
	"sketchml/internal/stats"
	"sketchml/internal/trainer"
)

// AblationLossyBaselines contrasts SketchML against the related-work lossy
// compressors the paper discusses but does not run: 1-bit SGD (threshold
// truncation, [39]) and Top-K sparsification, each with and without
// error-feedback residual compensation.
//
// Two honest findings beyond the paper: (1) with Adam as the optimizer,
// sign-only (1-bit) and Top-K gradients are far more competitive on linear
// models than the paper's related-work discussion suggests — Adam's
// per-dimension normalization already discards most magnitude information;
// (2) naive mean-scale 1-bit is UNSTABLE under error feedback (the residual
// inflates the scale each round), which is why the literature pairs 1-bit
// with per-column scales.
func AblationLossyBaselines(cfg Config) (*Report, error) {
	train, test := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(6)
	net := cluster.ProductionCluster()

	type entry struct {
		name    string
		factory func() codec.Codec
	}
	entries := []entry{
		{"Adam", func() codec.Codec { return &codec.Raw{} }},
		{"SketchML", func() codec.Codec { return codec.MustSketchML(codec.DefaultOptions()) }},
		{"OneBit", func() codec.Codec { return &codec.OneBit{} }},
		{"OneBit+EF", func() codec.Codec { return codec.NewErrorFeedback(&codec.OneBit{}) }},
		{"TopK-0.1", func() codec.Codec { return &codec.TopK{Fraction: 0.1} }},
		{"TopK-0.1+EF", func() codec.Codec { return codec.NewErrorFeedback(&codec.TopK{Fraction: 0.1}) }},
	}
	table := stats.NewTable("codec", "final loss", "msg KB/round", "sim s/epoch")
	metrics := map[string]float64{}
	for _, e := range entries {
		res, err := trainer.Run(trainer.Config{
			Model:         model.LogisticRegression{},
			CodecFactory:  e.factory,
			Optimizer:     adam(0.1),
			Workers:       10,
			BatchFraction: 0.1,
			Epochs:        epochs,
			Lambda:        0.01,
			Seed:          cfg.Seed,
			Network:       net,
		}, train, test)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		table.AddRow(e.name, res.FinalLoss, res.AvgUpBytesPerRound()/1024,
			res.AvgEpochSimTime().Seconds())
		metrics[e.name+"_loss"] = res.FinalLoss
		metrics[e.name+"_bytes"] = res.AvgUpBytesPerRound()
		metrics[e.name+"_seconds"] = res.AvgEpochSimTime().Seconds()
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// ExtensionParameterServer compares the paper's single-driver topology with
// the sharded parameter-server extension at 50 workers: dividing the
// bottleneck aggregation link across servers rescues uncompressed Adam,
// while SketchML — whose messages are already small — gains much less.
// This situates the paper's contribution: compression and topology attack
// the same bottleneck from different sides.
func ExtensionParameterServer(cfg Config) (*Report, error) {
	train, test := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(2)
	net := cluster.ProductionCluster()

	table := stats.NewTable("codec", "1 server (s)", "4 servers (s)", "PS speedup")
	metrics := map[string]float64{}
	for _, c := range []codec.Codec{&codec.Raw{}, codec.MustSketchML(codec.DefaultOptions())} {
		var secs [2]float64
		for i, servers := range []int{1, 4} {
			res, err := trainer.RunPS(trainer.Config{
				Model:         model.LogisticRegression{},
				Codec:         c,
				Optimizer:     adam(0.1),
				Workers:       50,
				BatchFraction: 0.1,
				Epochs:        epochs,
				Lambda:        0.01,
				Seed:          cfg.Seed,
				Network:       net,
			}, servers, train, test)
			if err != nil {
				return nil, err
			}
			secs[i] = res.AvgEpochSimTime().Seconds()
		}
		speedup := secs[0] / secs[1]
		table.AddRow(c.Name(), secs[0], secs[1], speedup)
		metrics[c.Name()+"_1s_seconds"] = secs[0]
		metrics[c.Name()+"_4s_seconds"] = secs[1]
		metrics[c.Name()+"_ps_speedup"] = speedup
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// ExtensionFactorizationMachine trains a second-order factorization machine
// (the model family of the paper's DiFacto citation [30]) through each
// codec: SketchML's compression generalizes beyond GLMs because FM
// gradients are still sparse key-value pairs — just over a larger
// parameter space (D·(1+k)).
func ExtensionFactorizationMachine(cfg Config) (*Report, error) {
	d, err := dataset.Generate(dataset.SyntheticConfig{
		N: 4000, Dim: 20000, AvgNNZ: 20, Task: dataset.Classification,
		NoiseStd: 0.4, BinaryVals: true, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	train, test := d.Split(0.75, cfg.Seed)
	epochs := cfg.scaled(3)
	net := cluster.ProductionCluster()

	table := stats.NewTable("codec", "final loss", "accuracy", "msg KB/round", "sim s/epoch")
	metrics := map[string]float64{}
	for _, c := range threeCodecs() {
		res, err := trainer.Run(trainer.Config{
			Trainable:     model.FM{Factors: 4, Seed: cfg.Seed, InitScale: 0.05},
			Codec:         c,
			Optimizer:     adam(0.05),
			Workers:       10,
			BatchFraction: 0.1,
			Epochs:        epochs,
			Lambda:        0.001,
			Seed:          cfg.Seed,
			Network:       net,
		}, train, test)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name(), err)
		}
		table.AddRow(c.Name(), res.FinalLoss, res.FinalAccuracy,
			res.AvgUpBytesPerRound()/1024, res.AvgEpochSimTime().Seconds())
		metrics[c.Name()+"_loss"] = res.FinalLoss
		metrics[c.Name()+"_accuracy"] = res.FinalAccuracy
		metrics[c.Name()+"_seconds"] = res.AvgEpochSimTime().Seconds()
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// ExtensionSSP measures the Stale Synchronous Parallel protocol (Ho et al.,
// the paper's citation [19]) under a straggler: how much sooner each
// epoch's worth of updates lands in virtual time as the staleness bound
// grows, and what it costs in final loss.
func ExtensionSSP(cfg Config) (*Report, error) {
	train, test := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	// The curve needs at least a few epoch marks to show when updates land.
	epochs := cfg.scaled(4)
	if epochs < 3 {
		epochs = 3
	}
	const workers = 8
	speeds := make([]float64, workers)
	for w := range speeds {
		speeds[w] = 1
	}
	speeds[workers-1] = 6 // one persistent straggler

	table := stats.NewTable("staleness", "first epoch lands (sim s)", "final loss")
	metrics := map[string]float64{}
	for _, staleness := range []int{0, 2, 8} {
		res, err := trainer.RunSSP(trainer.Config{
			Model:         model.LogisticRegression{},
			Codec:         codec.MustSketchML(codec.DefaultOptions()),
			Optimizer:     adam(0.05), // stale gradients need a gentler rate
			Workers:       workers,
			BatchFraction: 0.1,
			Epochs:        epochs,
			Lambda:        0.01,
			Seed:          cfg.Seed,
			ComputeScale:  1000,
		}, staleness, speeds, train, test)
		if err != nil {
			return nil, err
		}
		first := res.Curve[0].Seconds
		table.AddRow(staleness, first, res.FinalLoss)
		metrics[fmt.Sprintf("s%d_first_epoch_seconds", staleness)] = first
		metrics[fmt.Sprintf("s%d_loss", staleness)] = res.FinalLoss
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}
