// Package experiments regenerates every table and figure of the SketchML
// paper's evaluation (Section 4 and Appendix B) on the synthetic substrate
// described in DESIGN.md. Each experiment returns a Report containing the
// rendered rows/series plus the key numeric metrics, so the same code backs
// both cmd/sketchbench and the root bench_test.go benchmarks.
//
// Absolute numbers differ from the paper (50-node Tencent clusters are
// replaced by one machine plus a network cost model); the shapes — who
// wins, by roughly what factor, where crossovers fall — are the
// reproduction target.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/model"
	"sketchml/internal/optim"
	"sketchml/internal/trainer"
)

// Report is the outcome of one experiment.
type Report struct {
	ID      string
	Title   string
	Text    string             // rendered tables / histograms / series
	Metrics map[string]float64 // key metrics, stable names, for benches
}

func (r *Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Text)
}

// Config scales an experiment run.
type Config struct {
	// Scale multiplies dataset sizes and epoch counts; 1.0 reproduces the
	// repository defaults, smaller values give quicker approximate runs.
	Scale float64
	// Seed offsets all data generation.
	Seed int64
}

// DefaultConfig returns Scale 1.0, Seed 1.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 1} }

func (c Config) scaled(n int) int {
	if c.Scale <= 0 {
		return n
	}
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// runner is an experiment entry point.
type runner func(Config) (*Report, error)

var registry = map[string]struct {
	title string
	fn    runner
}{
	"fig4":  {"Nonuniform gradient values (histogram)", Fig4},
	"fig8a": {"Run time per epoch, component ablation", Fig8a},
	"fig8b": {"Message size and compression rate", Fig8b},
	"fig8c": {"CPU overhead of compression", Fig8c},
	"fig8d": {"Impact of batch size and sparsity", Fig8d},
	"fig9a": {"End-to-end run time, KDD12-like", Fig9a},
	"fig9b": {"End-to-end run time, CTR-like", Fig9b},
	"fig10": {"Convergence: loss vs time", Fig10},
	"tab2":  {"Model accuracy: converged loss / time", Table2},
	"fig11": {"Scalability: 5/10/50 workers", Fig11},
	"fig12": {"Distributed vs single node", Fig12},
	"fig13": {"Hyper-parameter sensitivity", Fig13},
	"tab3":  {"Sensitivity run times", Fig13},
	"fig14": {"Neural network (MLP) convergence", Fig14},
	"tab4":  {"Weight types", Table4},

	"ablation-minmax":   {"MinMaxSketch vs Count-Min strategy", AblationMinMaxVsCountMin},
	"ablation-sign":     {"Signed vs joint quantification", AblationSignSeparation},
	"ablation-grouping": {"Grouped sketch error vs r", AblationGrouping},
	"ablation-quantile": {"Quantile vs uniform quantization", AblationQuantileVsUniform},
	"ablation-keycodec": {"Delta-binary vs varint vs bitmap keys", AblationKeyCodecs},
	"ablation-lossy":    {"Related-work lossy baselines (1-bit, Top-K, error feedback)", AblationLossyBaselines},
	"ablation-sketch":   {"GK vs KLL quantile sketch in the codec", AblationSketchAlgo},
	"extension-ps":      {"Parameter-server topology vs single driver", ExtensionParameterServer},
	"extension-fm":      {"Factorization machine through each codec", ExtensionFactorizationMachine},
	"extension-ssp":     {"Stale synchronous parallel under a straggler", ExtensionSSP},
}

// IDs returns every experiment id in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human title for an experiment id.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have: %s)",
			id, strings.Join(IDs(), ", "))
	}
	rep, err := e.fn(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	rep.ID = id
	rep.Title = e.title
	return rep, nil
}

// ---- shared helpers ----

// adam returns the paper's Adam optimizer factory at learning rate lr.
func adam(lr float64) trainer.OptimizerFactory {
	return func(dim uint64) optim.Optimizer { return optim.NewAdam(lr, dim) }
}

// threeCodecs returns the paper's Section 4.3 competitors.
func threeCodecs() []codec.Codec {
	return []codec.Codec{
		codec.MustSketchML(codec.DefaultOptions()),
		&codec.Raw{}, // "Adam"
		&codec.ZipML{Bits: 16},
	}
}

// ablationCodecs returns the paper's Figure 8 cumulative component stages.
func ablationCodecs() []codec.Codec {
	keyOnly := codec.DefaultOptions()
	keyOnly.Quantize, keyOnly.MinMax = false, false
	keyQuan := codec.DefaultOptions()
	keyQuan.MinMax = false
	return []codec.Codec{
		&codec.Raw{},
		codec.MustSketchML(keyOnly),
		codec.MustSketchML(keyQuan),
		codec.MustSketchML(codec.DefaultOptions()),
	}
}

// run executes one training configuration against a train/test pair with
// the paper's default 10% batch fraction.
func run(mdl model.Model, c codec.Codec, workers, epochs int,
	net cluster.NetworkModel, train, test *dataset.Dataset, seed int64) (*trainer.Result, error) {
	return runBatchFrac(mdl, c, workers, epochs, 0.1, net, train, test, seed)
}

// runBatchFrac is run with an explicit batch fraction (Figure 8(d) varies it).
func runBatchFrac(mdl model.Model, c codec.Codec, workers, epochs int, batchFrac float64,
	net cluster.NetworkModel, train, test *dataset.Dataset, seed int64) (*trainer.Result, error) {
	return runFull(mdl, c, workers, epochs, batchFrac, net, train, test, seed, 1)
}

// runFull exposes every knob, including the compute-scale calibration used
// by the CTR-like experiments (see trainer.Config.ComputeScale).
func runFull(mdl model.Model, c codec.Codec, workers, epochs int, batchFrac float64,
	net cluster.NetworkModel, train, test *dataset.Dataset, seed int64, computeScale float64) (*trainer.Result, error) {
	return trainer.Run(trainer.Config{
		Model:         mdl,
		Codec:         c,
		Optimizer:     adam(0.1),
		Workers:       workers,
		BatchFraction: batchFrac,
		Epochs:        epochs,
		Lambda:        0.01,
		Seed:          seed,
		Network:       net,
		ComputeScale:  computeScale,
	}, train, test)
}
