package experiments

import (
	"fmt"
	"strings"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/model"
	"sketchml/internal/stats"
	"sketchml/internal/trainer"
)

// Compute-scale calibrations (see trainer.Config.ComputeScale): the real
// CTR workload is compute-dominant (300M dense-ish instances), and the
// paper's scalability study sits in a regime where both compute and
// communication matter. These constants pin our scaled-down substitutes to
// the same regimes.
const (
	ctrComputeScale   = 4500
	fig11ComputeScale = 2500
	fig12ComputeScale = 40
)

// endToEnd runs the three competitor codecs across the three models on one
// dataset family and tabulates simulated epoch times.
func endToEnd(cfg Config, clsData *dataset.Dataset, regData *dataset.Dataset,
	workers int, net cluster.NetworkModel, computeScale float64) (*Report, error) {
	train, test := clsData.Split(0.75, cfg.Seed)
	regTrain, regTest := regData.Split(0.75, cfg.Seed)
	epochs := cfg.scaled(3)

	table := stats.NewTable("model", "codec", "sim s/epoch", "speedup vs Adam")
	metrics := map[string]float64{}
	for _, mdl := range model.All() {
		tr, te := train, test
		if mdl.Name() == "Linear" {
			tr, te = regTrain, regTest
		}
		secs := map[string]float64{}
		for _, c := range threeCodecs() {
			res, err := runFull(mdl, c, workers, epochs, 0.1, net, tr, te, cfg.Seed, computeScale)
			if err != nil {
				return nil, err
			}
			secs[c.Name()] = res.AvgEpochSimTime().Seconds()
		}
		for _, c := range threeCodecs() {
			name := c.Name()
			speedup := secs["Adam"] / secs[name]
			table.AddRow(mdl.Name(), name, secs[name], speedup)
			metrics[fmt.Sprintf("%s_%s_seconds", name, mdl.Name())] = secs[name]
			metrics[fmt.Sprintf("%s_%s_speedup", name, mdl.Name())] = speedup
		}
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig9a reproduces the KDD12 end-to-end run times with 10 workers.
func Fig9a(cfg Config) (*Report, error) {
	return endToEnd(cfg, dataset.KDD12Like(cfg.Seed),
		dataset.RegressionLike(cfg.Seed, 6000, 50000), 10, cluster.ProductionCluster(), 1)
}

// Fig9b reproduces the CTR end-to-end run times with 50 workers. CTR-like
// data is denser, so compression gains are smaller (Section 4.3.2).
func Fig9b(cfg Config) (*Report, error) {
	// ComputeScale calibrates the compute:communication ratio to the paper's
	// CTR regime, where per-instance computation dominates (Section 4.3.2).
	return endToEnd(cfg, dataset.CTRLike(cfg.Seed),
		dataset.RegressionLike(cfg.Seed+5, 5000, 15000), 50, cluster.ProductionCluster(), ctrComputeScale)
}

// Fig10 reproduces the convergence curves: test loss against cumulative
// simulated time for the three codecs across models and both dataset
// families.
func Fig10(cfg Config) (*Report, error) {
	type panel struct {
		name     string
		cls, reg *dataset.Dataset
		workers  int
	}
	panels := []panel{
		{"KDD12", dataset.KDD12Like(cfg.Seed), dataset.RegressionLike(cfg.Seed, 6000, 50000), 10},
		{"CTR", dataset.CTRLike(cfg.Seed), dataset.RegressionLike(cfg.Seed+5, 5000, 15000), 20},
	}
	epochs := cfg.scaled(6)
	net := cluster.ProductionCluster()

	var b strings.Builder
	metrics := map[string]float64{}
	for _, p := range panels {
		train, test := p.cls.Split(0.75, cfg.Seed)
		regTrain, regTest := p.reg.Split(0.75, cfg.Seed)
		for _, mdl := range model.All() {
			tr, te := train, test
			if mdl.Name() == "Linear" {
				tr, te = regTrain, regTest
			}
			fmt.Fprintf(&b, "--- %s, %s (loss vs simulated seconds) ---\n", mdl.Name(), p.name)
			results := map[string]*trainer.Result{}
			var series []stats.Series
			for _, c := range threeCodecs() {
				res, err := run(mdl, c, p.workers, epochs, net, tr, te, cfg.Seed)
				if err != nil {
					return nil, err
				}
				results[c.Name()] = res
				fmt.Fprintf(&b, "%-12s", c.Name())
				s := stats.Series{Name: c.Name()}
				for _, pt := range res.Curve {
					fmt.Fprintf(&b, " (%.2fs, %.4f)", pt.Seconds, pt.Loss)
					s.X = append(s.X, pt.Seconds)
					s.Y = append(s.Y, pt.Loss)
				}
				series = append(series, s)
				b.WriteByte('\n')
			}
			b.WriteByte('\n')
			b.WriteString(stats.Plot(series, 64, 10))
			// Shape metric: time for each codec to first reach within 2% of
			// Adam's final loss.
			target := results["Adam"].FinalLoss * 1.02
			for name, res := range results {
				t := timeToReach(res, target)
				metrics[fmt.Sprintf("%s_%s_%s_time_to_target", name, mdl.Name(), p.name)] = t
			}
			b.WriteByte('\n')
		}
	}
	return &Report{Text: b.String(), Metrics: metrics}, nil
}

// timeToReach returns the first curve time at which loss <= target, or the
// final time if never reached.
func timeToReach(res *trainer.Result, target float64) float64 {
	for _, pt := range res.Curve {
		if pt.Loss <= target {
			return pt.Seconds
		}
	}
	if len(res.Curve) == 0 {
		return 0
	}
	return res.Curve[len(res.Curve)-1].Seconds
}

// Table2 reproduces the model-accuracy table: minimal loss and simulated
// time to convergence, where convergence means the loss varied by less than
// 1% within five consecutive epochs.
func Table2(cfg Config) (*Report, error) {
	clsTrain, clsTest := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	regTrain, regTest := dataset.RegressionLike(cfg.Seed, 6000, 50000).Split(0.75, cfg.Seed)
	maxEpochs := cfg.scaled(25)
	net := cluster.ProductionCluster()

	table := stats.NewTable("model", "codec", "min loss", "converged (sim s)")
	metrics := map[string]float64{}
	for _, mdl := range model.All() {
		tr, te := clsTrain, clsTest
		if mdl.Name() == "Linear" {
			tr, te = regTrain, regTest
		}
		for _, c := range threeCodecs() {
			res, err := run(mdl, c, 10, maxEpochs, net, tr, te, cfg.Seed)
			if err != nil {
				return nil, err
			}
			minLoss, convTime := convergence(res)
			table.AddRow(mdl.Name(), c.Name(), minLoss, convTime)
			metrics[fmt.Sprintf("%s_%s_min_loss", c.Name(), mdl.Name())] = minLoss
			metrics[fmt.Sprintf("%s_%s_conv_seconds", c.Name(), mdl.Name())] = convTime
		}
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// convergence returns the minimal test loss and the cumulative simulated
// time at which the <1%-variation-over-5-epochs criterion first held.
func convergence(res *trainer.Result) (minLoss, seconds float64) {
	minLoss = res.Epochs[0].TestLoss
	for _, e := range res.Epochs {
		if e.TestLoss < minLoss {
			minLoss = e.TestLoss
		}
	}
	const window = 5
	for i := window - 1; i < len(res.Curve); i++ {
		lo, hi := res.Curve[i].Loss, res.Curve[i].Loss
		for j := i - window + 1; j <= i; j++ {
			if res.Curve[j].Loss < lo {
				lo = res.Curve[j].Loss
			}
			if res.Curve[j].Loss > hi {
				hi = res.Curve[j].Loss
			}
		}
		if lo > 0 && (hi-lo)/lo < 0.01 {
			return minLoss, res.Curve[i].Seconds
		}
	}
	return minLoss, res.Curve[len(res.Curve)-1].Seconds
}

// Fig11 reproduces the scalability study: epoch time at 5, 10, and 50
// workers. Uncompressed Adam degrades at 50 workers (communication
// overwhelms the compute saving) while SketchML and ZipML keep improving.
func Fig11(cfg Config) (*Report, error) {
	clsTrain, clsTest := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	regTrain, regTest := dataset.RegressionLike(cfg.Seed, 6000, 50000).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(2)
	net := cluster.ProductionCluster()

	table := stats.NewTable("model", "codec", "5 workers (s)", "10 workers (s)", "50 workers (s)")
	// The compute term must be realistic for the crossover to appear: with
	// unscaled (trivial) compute, every codec is purely communication-bound
	// and nothing improves with more workers.
	metrics := map[string]float64{}
	for _, mdl := range model.All() {
		tr, te := clsTrain, clsTest
		if mdl.Name() == "Linear" {
			tr, te = regTrain, regTest
		}
		for _, c := range threeCodecs() {
			var secs [3]float64
			for i, w := range []int{5, 10, 50} {
				res, err := runFull(mdl, c, w, epochs, 0.1, net, tr, te, cfg.Seed, fig11ComputeScale)
				if err != nil {
					return nil, err
				}
				secs[i] = res.AvgEpochSimTime().Seconds()
				metrics[fmt.Sprintf("%s_%s_w%d_seconds", c.Name(), mdl.Name(), w)] = secs[i]
			}
			table.AddRow(mdl.Name(), c.Name(), secs[0], secs[1], secs[2])
		}
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig12 reproduces the Appendix B.1 comparison against a single-node system
// ("SkLearn" in the paper): one worker with raw gradients and no network
// versus SketchML on 5 and 10 workers.
func Fig12(cfg Config) (*Report, error) {
	train, test := dataset.KDD10Like(cfg.Seed).Split(0.75, cfg.Seed)
	regTrain, regTest := dataset.RegressionLike(cfg.Seed, 3000, 25000).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(3)
	localNet := cluster.NetworkModel{BandwidthBytesPerSec: 1e15, LatencySec: 0, Congestion: 1}
	lan := cluster.FastLAN()

	type variant struct {
		name    string
		c       codec.Codec
		workers int
		net     cluster.NetworkModel
	}
	variants := []variant{
		{"SingleNode", &codec.Raw{}, 1, localNet},
		{"SketchML-5", codec.MustSketchML(codec.DefaultOptions()), 5, lan},
		{"SketchML-10", codec.MustSketchML(codec.DefaultOptions()), 10, lan},
	}
	table := stats.NewTable("model", "system", "sim s/epoch")
	metrics := map[string]float64{}
	for _, mdl := range model.All() {
		tr, te := train, test
		if mdl.Name() == "Linear" {
			tr, te = regTrain, regTest
		}
		for _, v := range variants {
			res, err := runFull(mdl, v.c, v.workers, epochs, 0.1, v.net, tr, te, cfg.Seed, fig12ComputeScale)
			if err != nil {
				return nil, err
			}
			sec := res.AvgEpochSimTime().Seconds()
			table.AddRow(mdl.Name(), v.name, sec)
			metrics[fmt.Sprintf("%s_%s_seconds", v.name, mdl.Name())] = sec
		}
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig13 reproduces the sensitivity study (Figure 13 + Table 3): quantile
// sketch size, MinMaxSketch rows, and MinMaxSketch columns, evaluated on
// Linear regression — epoch time plus loss after the epoch budget.
func Fig13(cfg Config) (*Report, error) {
	train, test := dataset.RegressionLike(cfg.Seed, 6000, 50000).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(4)
	net := cluster.ProductionCluster()

	type variant struct {
		name string
		mut  func(*codec.Options)
	}
	variants := []variant{
		{"default", func(o *codec.Options) {}},
		{"quan_256", func(o *codec.Options) { o.SketchSize = 256 }},
		{"row_4", func(o *codec.Options) { o.Rows = 4 }},
		{"col_d/2", func(o *codec.Options) { o.ColsFraction = 0.5 }},
	}
	table := stats.NewTable("variant", "sim s/epoch", "final loss")
	metrics := map[string]float64{}
	for _, v := range variants {
		o := codec.DefaultOptions()
		v.mut(&o)
		res, err := run(model.Linear{}, codec.MustSketchML(o), 10, epochs, net, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sec := res.AvgEpochSimTime().Seconds()
		table.AddRow(v.name, sec, res.FinalLoss)
		metrics[v.name+"_seconds"] = sec
		metrics[v.name+"_loss"] = res.FinalLoss
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Table4 reproduces the weight-type comparison: SketchML against 8- and
// 16-bit ZipML and float/double Adam, on LR.
func Table4(cfg Config) (*Report, error) {
	train, test := dataset.KDD12Like(cfg.Seed).Split(0.75, cfg.Seed)
	epochs := cfg.scaled(4)
	net := cluster.ProductionCluster()

	codecs := []codec.Codec{
		codec.MustSketchML(codec.DefaultOptions()),
		&codec.ZipML{Bits: 8},
		&codec.ZipML{Bits: 16},
		&codec.Raw{Float32: true},
		&codec.Raw{},
	}
	table := stats.NewTable("codec", "sim s/epoch", "final loss")
	metrics := map[string]float64{}
	for _, c := range codecs {
		res, err := run(model.LogisticRegression{}, c, 10, epochs, net, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sec := res.AvgEpochSimTime().Seconds()
		table.AddRow(c.Name(), sec, res.FinalLoss)
		metrics[c.Name()+"_seconds"] = sec
		metrics[c.Name()+"_loss"] = res.FinalLoss
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}
