package experiments

import (
	"fmt"
	"strings"
	"time"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/gradient"
	"sketchml/internal/nn"
	"sketchml/internal/optim"
	"sketchml/internal/stats"
)

// Fig14 reproduces the Appendix B.3 neural-network experiment: an MLP on
// MNIST-like 20×20 images, trained with each codec compressing the dense
// gradients, reporting both short- and long-term convergence.
//
// The MLP's gradients are dense, so (as the paper notes) key compression is
// redundant here — the value path (quantile buckets + MinMaxSketch) is what
// gets exercised.
func Fig14(cfg Config) (*Report, error) {
	full := dataset.MNISTLike(cfg.Seed, cfg.scaled(1500), 20)
	train, test := full.Split(0.8, cfg.Seed)
	const workers = 4
	batch := 60 // the paper's batch size
	iters := cfg.scaled(400)
	evalEvery := iters / 10
	if evalEvery < 1 {
		evalEvery = 1
	}
	net := cluster.LabCluster()

	var b strings.Builder
	metrics := map[string]float64{}
	var series []stats.Series
	for _, c := range threeCodecs() {
		curve, finalLoss, acc, err := trainMLP(c, train, test, workers, batch, iters, evalEvery, net, cfg.Seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-12s final loss %.4f, accuracy %.3f\n", c.Name(), finalLoss, acc)
		fmt.Fprintf(&b, "    curve:")
		s := stats.Series{Name: c.Name()}
		for _, pt := range curve {
			fmt.Fprintf(&b, " (%.2fs, %.3f)", pt.sec, pt.loss)
			s.X = append(s.X, pt.sec)
			s.Y = append(s.Y, pt.loss)
		}
		series = append(series, s)
		b.WriteString("\n")
		metrics[c.Name()+"_final_loss"] = finalLoss
		metrics[c.Name()+"_accuracy"] = acc
		if len(curve) > 0 {
			metrics[c.Name()+"_total_seconds"] = curve[len(curve)-1].sec
		}
	}
	b.WriteByte('\n')
	b.WriteString(stats.Plot(series, 64, 10))
	return &Report{Text: b.String(), Metrics: metrics}, nil
}

type mlpPoint struct {
	sec  float64
	loss float64
}

// trainMLP runs the distributed MLP loop in-process: each round, every
// (simulated) worker computes a dense gradient on its next batch, the
// gradient passes through the codec both ways, the aggregate is applied to
// the shared replica, and the round's traffic feeds the network cost model.
func trainMLP(c codec.Codec, train, test *dataset.Dataset, workers, batch, iters, evalEvery int,
	netModel cluster.NetworkModel, seed int64) ([]mlpPoint, float64, float64, error) {
	m, err := nn.New([]int{400, 64, 10}, seed)
	if err != nil {
		return nil, 0, 0, err
	}
	opt := optim.NewAdam(0.01, m.ParamDim())
	shards := train.Shard(workers)
	batchers := make([]*dataset.Batcher, workers)
	for w := range batchers {
		batchers[w] = dataset.NewBatcher(shards[w], batch/workers+1, seed+int64(w))
	}
	acc := gradient.NewAccumulator(m.ParamDim())

	var curve []mlpPoint
	var simSeconds float64
	var buf []*dataset.Instance
	for it := 0; it < iters; it++ {
		var upBytes int64
		t0 := time.Now()
		var workerCompute time.Duration
		for w := 0; w < workers; w++ {
			cs := time.Now()
			buf = batchers[w].Next(buf)
			_, dense, err := m.LossAndGradient(buf)
			if err != nil {
				return nil, 0, 0, err
			}
			workerCompute += time.Since(cs)
			g := gradient.FromDense(dense, 0)
			msg, err := c.Encode(g)
			if err != nil {
				return nil, 0, 0, err
			}
			upBytes += int64(len(msg))
			dec, err := c.Decode(msg)
			if err != nil {
				return nil, 0, 0, err
			}
			if err := acc.Add(dec, 1.0/float64(workers)); err != nil {
				return nil, 0, 0, err
			}
		}
		agg := acc.Sum()
		msg, err := c.Encode(agg)
		if err != nil {
			return nil, 0, 0, err
		}
		dec, err := c.Decode(msg)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := opt.Step(m.Params(), dec); err != nil {
			return nil, 0, 0, err
		}
		wall := time.Since(t0)
		// Simulated time: worker compute parallelizes; codec work measured
		// within wall already — approximate serial remainder as wall minus
		// the parallelizable compute share.
		serial := wall - workerCompute + workerCompute/time.Duration(workers)
		comm := netModel.RoundTime(upBytes, int64(len(msg)), workers)
		simSeconds += serial.Seconds() + comm.Seconds()

		if (it+1)%evalEvery == 0 {
			loss, err := m.Loss(test)
			if err != nil {
				return nil, 0, 0, err
			}
			curve = append(curve, mlpPoint{sec: simSeconds, loss: loss})
		}
	}
	finalLoss, err := m.Loss(test)
	if err != nil {
		return nil, 0, 0, err
	}
	return curve, finalLoss, m.Accuracy(test), nil
}
