//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. See skipUnderRace in experiments_test.go.
const raceEnabled = true
