package experiments

import (
	"fmt"
	"math"
	"strings"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/gradient"
	"sketchml/internal/keycoding"
	"sketchml/internal/model"
	"sketchml/internal/stats"
)

// firstGradient computes the first mini-batch LR gradient on a dataset with
// an untrained model — exactly how the paper produced Figure 4.
func firstGradient(d *dataset.Dataset, batchFrac float64) *gradient.Sparse {
	n := int(batchFrac * float64(d.N()))
	if n < 1 {
		n = 1
	}
	batch := make([]*dataset.Instance, 0, n)
	for i := 0; i < n && i < d.N(); i++ {
		batch = append(batch, &d.Instances[i])
	}
	theta := make([]float64, d.Dim)
	g, _ := model.BatchGradient(model.LogisticRegression{}, theta, batch, 0.01)
	return g
}

// Fig4 reproduces the gradient-value histogram: values concentrate near
// zero and are far from uniform over their range.
func Fig4(cfg Config) (*Report, error) {
	d := dataset.KDD10Like(cfg.Seed)
	g := firstGradient(d, 0.1)
	if g.NNZ() == 0 {
		return nil, fmt.Errorf("fig4: empty gradient")
	}
	maxAbs := g.MaxAbs()
	h := stats.NewHistogram(-maxAbs, maxAbs, 21)
	h.AddAll(g.Values)

	// Concentration metric: fraction of values within 10% of zero relative
	// to the extreme value.
	near := 0
	for _, v := range g.Values {
		if math.Abs(v) < 0.1*maxAbs {
			near++
		}
	}
	frac := float64(near) / float64(g.NNZ())

	var b strings.Builder
	fmt.Fprintf(&b, "first LR gradient on KDD10-like data: d=%d nonzeros over D=%d dims\n",
		g.NNZ(), g.Dim)
	fmt.Fprintf(&b, "value range [%.4g, %.4g]\n\n", -maxAbs, maxAbs)
	b.WriteString(h.Render(50))
	fmt.Fprintf(&b, "\n%.1f%% of gradient values lie within 10%% of zero — a uniform\n", frac*100)
	b.WriteString("quantizer would waste most of its levels on the empty tails.\n")
	return &Report{
		Text: b.String(),
		Metrics: map[string]float64{
			"nnz":                float64(g.NNZ()),
			"fraction_near_zero": frac,
		},
	}, nil
}

// Fig8a reproduces the component ablation: epoch time for Adam, Adam+Key,
// Adam+Key+Quan, and full SketchML across LR, SVM, and Linear.
func Fig8a(cfg Config) (*Report, error) {
	train, test := dataset.KDD10Like(cfg.Seed).Split(0.75, cfg.Seed)
	reg := dataset.RegressionLike(cfg.Seed, 3000, 25000)
	regTrain, regTest := reg.Split(0.75, cfg.Seed)
	epochs := cfg.scaled(3)
	net := cluster.LabCluster()

	table := stats.NewTable("codec", "model", "sim s/epoch", "speedup vs Adam")
	metrics := map[string]float64{}
	for _, mdl := range model.All() {
		tr, te := train, test
		if mdl.Name() == "Linear" {
			tr, te = regTrain, regTest
		}
		var adamSec float64
		for _, c := range ablationCodecs() {
			res, err := run(mdl, c, 10, epochs, net, tr, te, cfg.Seed)
			if err != nil {
				return nil, err
			}
			sec := res.AvgEpochSimTime().Seconds()
			if c.Name() == "Adam" {
				adamSec = sec
			}
			speedup := adamSec / sec
			table.AddRow(c.Name(), mdl.Name(), sec, speedup)
			metrics[fmt.Sprintf("%s_%s_seconds", c.Name(), mdl.Name())] = sec
			metrics[fmt.Sprintf("%s_%s_speedup", c.Name(), mdl.Name())] = speedup
		}
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig8b reproduces the message-size and compression-rate comparison for the
// LR workload, with the per-section byte attribution our codecs expose.
func Fig8b(cfg Config) (*Report, error) {
	train, test := dataset.KDD10Like(cfg.Seed).Split(0.75, cfg.Seed)
	net := cluster.LabCluster()
	epochs := cfg.scaled(2)

	table := stats.NewTable("codec", "msg KB", "compression", "keys KB", "values KB", "meta KB")
	metrics := map[string]float64{}
	sample := firstGradient(train, 0.1)
	var rawBytes float64
	for _, c := range ablationCodecs() {
		res, err := run(model.LogisticRegression{}, c, 10, epochs, net, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// The paper's Figure 8(b) reports the aggregated gradient message;
		// the broadcast (driver→worker) message is our equivalent. Tiny
		// per-worker gradients sit below the q=256 regime and would
		// understate the MinMaxSketch stage.
		msg := res.AvgDownBytesPerRound()
		if c.Name() == "Adam" {
			rawBytes = msg
		}
		rate := rawBytes / msg
		var bd codec.Breakdown
		if a, ok := c.(codec.Analyzer); ok {
			bd, err = a.Analyze(sample)
			if err != nil {
				return nil, err
			}
		}
		table.AddRow(c.Name(), msg/1024, rate,
			float64(bd.Keys)/1024, float64(bd.Values)/1024, float64(bd.Meta)/1024)
		metrics[c.Name()+"_bytes"] = msg
		metrics[c.Name()+"_rate"] = rate
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig8c reproduces the CPU-overhead measurement: how much extra CPU the
// compression pipeline costs relative to gradient computation.
func Fig8c(cfg Config) (*Report, error) {
	train, test := dataset.KDD10Like(cfg.Seed).Split(0.75, cfg.Seed)
	net := cluster.LabCluster()
	epochs := cfg.scaled(2)

	table := stats.NewTable("codec", "compute ms/epoch", "codec ms/epoch", "codec share %")
	metrics := map[string]float64{}
	for _, c := range ablationCodecs() {
		res, err := run(model.LogisticRegression{}, c, 10, epochs, net, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var compute, codecTime float64
		for _, e := range res.Epochs {
			compute += e.ComputeTime.Seconds()
			codecTime += e.EncodeTime.Seconds() + e.DecodeTime.Seconds()
		}
		n := float64(len(res.Epochs))
		share := 100 * codecTime / (compute + codecTime)
		table.AddRow(c.Name(), 1000*compute/n, 1000*codecTime/n, share)
		metrics[c.Name()+"_codec_share_pct"] = share
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// Fig8d reproduces the batch-size/sparsity study: smaller batches mean
// sparser gradients, more rounds per epoch (longer epochs), and slightly
// more bytes per key for the delta encoding.
func Fig8d(cfg Config) (*Report, error) {
	full := dataset.KDD10Like(cfg.Seed)
	train, test := full.Split(0.75, cfg.Seed)
	net := cluster.LabCluster()
	sk := codec.MustSketchML(codec.DefaultOptions())

	table := stats.NewTable("batch ratio", "gradient sparsity %", "sim s/epoch", "bytes/key")
	metrics := map[string]float64{}
	for _, ratio := range []float64{0.1, 0.03, 0.01} {
		res, err := runBatchFrac(model.LogisticRegression{}, sk, 10, cfg.scaled(2), ratio, net, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		g := firstGradient(train, ratio)
		sparsity := g.Sparsity() * 100
		bpk, err := groupedBytesPerKey(g, 8)
		if err != nil {
			return nil, err
		}
		sec := res.AvgEpochSimTime().Seconds()
		table.AddRow(ratio, sparsity, sec, bpk)
		key := fmt.Sprintf("ratio_%g", ratio)
		metrics[key+"_sparsity_pct"] = sparsity
		metrics[key+"_seconds"] = sec
		metrics[key+"_bytes_per_key"] = bpk
	}
	return &Report{Text: table.String(), Metrics: metrics}, nil
}

// groupedBytesPerKey measures the delta-binary cost per key under the
// SketchML wire layout (keys split across r group lists per sign pane).
func groupedBytesPerKey(g *gradient.Sparse, r int) (float64, error) {
	if g.NNZ() == 0 {
		return 0, nil
	}
	// Approximate the codec's partition: split by sign, then round-robin
	// keys into r magnitude groups (group membership depends on values;
	// sign split is the dominant effect, and within a pane the r-way split
	// multiplies gaps by ~r regardless of which group a key lands in).
	var lists [][]uint64
	for pane := 0; pane < 2; pane++ {
		groups := make([][]uint64, r)
		gi := 0
		for i, v := range g.Values {
			if (pane == 0) != (v >= 0) {
				continue
			}
			groups[gi%r] = append(groups[gi%r], g.Keys[i])
			gi++
		}
		lists = append(lists, groups...)
	}
	totalBytes := 0
	totalKeys := 0
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		size, err := keycoding.DeltaSize(l)
		if err != nil {
			return 0, err
		}
		totalBytes += size - 4 // exclude fixed count header, as the paper's
		// bytes-per-key metric amortizes only flags+payload
		totalKeys += len(l)
	}
	return float64(totalBytes) / float64(totalKeys), nil
}
