package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// quick returns a configuration small enough for CI while keeping the
// shapes measurable.
func quick() Config { return Config{Scale: 0.5, Seed: 1} }

// skipUnderRace skips tests whose assertions compare wall-clock compute
// against modeled network cost. Race-detector instrumentation inflates
// CPU time 10-20x while the network model's costs stay fixed, so those
// orderings flip regardless of code correctness. The concurrency-heavy
// packages (trainer, cluster) keep full -race coverage; only the
// performance-shape assertions here are excluded.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("wall-clock shape assertions are not meaningful under the race detector")
	}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("id %q has no title", id)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestFig4Shape(t *testing.T) {
	rep, err := Run("fig4", quick())
	if err != nil {
		t.Fatal(err)
	}
	// The defining property: gradient values concentrate near zero.
	if frac := rep.Metrics["fraction_near_zero"]; frac < 0.5 {
		t.Errorf("only %.2f of values near zero; expected a skewed distribution", frac)
	}
	if !strings.Contains(rep.Text, "#") {
		t.Error("histogram not rendered")
	}
}

func TestFig8aShape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig8a", quick())
	if err != nil {
		t.Fatal(err)
	}
	// SketchML must beat plain Adam on every model (the paper's headline).
	for _, m := range []string{"LR", "SVM", "Linear"} {
		adam := rep.Metrics["Adam_"+m+"_seconds"]
		sk := rep.Metrics["SketchML_"+m+"_seconds"]
		if sk >= adam {
			t.Errorf("%s: SketchML %.3fs not faster than Adam %.3fs", m, sk, adam)
		}
	}
}

func TestFig8bShape(t *testing.T) {
	rep, err := Run("fig8b", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Message sizes must shrink monotonically across the component stages
	// and the full stack should beat 4x compression (paper: 7.24x).
	adam := rep.Metrics["Adam_bytes"]
	key := rep.Metrics["Adam+Key_bytes"]
	quan := rep.Metrics["Adam+Key+Quan_bytes"]
	full := rep.Metrics["SketchML_bytes"]
	if !(full < quan && quan < key && key < adam) {
		t.Errorf("sizes not monotone: %v %v %v %v", adam, key, quan, full)
	}
	if rate := rep.Metrics["SketchML_rate"]; rate < 4 {
		t.Errorf("compression rate %.2f, want >= 4", rate)
	}
}

func TestFig8cShape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig8c", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Compression costs CPU: the full stack's codec share must exceed the
	// raw baseline's, but stay a minority of total CPU.
	raw := rep.Metrics["Adam_codec_share_pct"]
	full := rep.Metrics["SketchML_codec_share_pct"]
	if full <= raw {
		t.Errorf("SketchML codec share %.1f%% should exceed raw %.1f%%", full, raw)
	}
	if full > 90 {
		t.Errorf("codec share %.1f%% implausibly high", full)
	}
}

func TestFig8dShape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig8d", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Smaller batches -> sparser gradients and more rounds -> slower epochs.
	if rep.Metrics["ratio_0.1_sparsity_pct"] <= rep.Metrics["ratio_0.01_sparsity_pct"] {
		t.Error("sparsity should decrease with batch ratio")
	}
	if rep.Metrics["ratio_0.1_seconds"] >= rep.Metrics["ratio_0.01_seconds"] {
		t.Error("smaller batches should make epochs slower")
	}
	// Bytes/key stays close to the paper's ~1.3.
	for _, k := range []string{"ratio_0.1_bytes_per_key", "ratio_0.01_bytes_per_key"} {
		if v := rep.Metrics[k]; v < 1.0 || v > 3.0 {
			t.Errorf("%s = %.2f outside plausible band", k, v)
		}
	}
}

func TestFig9aShape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig9a", quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"LR", "SVM", "Linear"} {
		adam := rep.Metrics["Adam_"+m+"_seconds"]
		zip := rep.Metrics["ZipML-16bit_"+m+"_seconds"]
		sk := rep.Metrics["SketchML_"+m+"_seconds"]
		if !(sk < zip && zip < adam) {
			t.Errorf("%s ordering wrong: sketchml %.3f, zipml %.3f, adam %.3f", m, sk, zip, adam)
		}
	}
}

func TestFig9bSmallerSpeedupThanKDD12(t *testing.T) {
	skipUnderRace(t)
	// Section 4.3.2: CTR is denser, so SketchML's relative speedup shrinks
	// compared to the KDD12-like dataset.
	a, err := Run("fig9a", quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig9b", quick())
	if err != nil {
		t.Fatal(err)
	}
	kddSpeedup := a.Metrics["SketchML_LR_speedup"]
	ctrSpeedup := b.Metrics["SketchML_LR_speedup"]
	if kddSpeedup <= 1 || ctrSpeedup <= 1 {
		t.Fatalf("speedups should exceed 1: kdd %.2f ctr %.2f", kddSpeedup, ctrSpeedup)
	}
	if ctrSpeedup >= kddSpeedup {
		t.Errorf("CTR speedup %.2f should be below KDD12 speedup %.2f", ctrSpeedup, kddSpeedup)
	}
}

func TestFig11Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig11", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Adam degrades at 50 workers; SketchML keeps improving.
	if rep.Metrics["Adam_LR_w50_seconds"] <= rep.Metrics["Adam_LR_w10_seconds"] {
		t.Error("Adam should degrade from 10 to 50 workers")
	}
	if rep.Metrics["SketchML_LR_w50_seconds"] >= rep.Metrics["SketchML_LR_w10_seconds"] {
		t.Error("SketchML should improve from 10 to 50 workers")
	}
}

func TestTable2Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("tab2", Config{Scale: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All three methods converge to comparable loss; SketchML converges in
	// less simulated time than Adam.
	for _, m := range []string{"LR", "SVM"} {
		adam := rep.Metrics["Adam_"+m+"_min_loss"]
		sk := rep.Metrics["SketchML_"+m+"_min_loss"]
		if sk > adam*1.25+0.02 {
			t.Errorf("%s: SketchML loss %.4f too far above Adam %.4f", m, sk, adam)
		}
		if rep.Metrics["SketchML_"+m+"_conv_seconds"] >= rep.Metrics["Adam_"+m+"_conv_seconds"] {
			t.Errorf("%s: SketchML should converge in less simulated time", m)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig12", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Distributed SketchML beats the single-node run, and 10 workers beat 5.
	single := rep.Metrics["SingleNode_LR_seconds"]
	five := rep.Metrics["SketchML-5_LR_seconds"]
	ten := rep.Metrics["SketchML-10_LR_seconds"]
	if !(ten < five && five < single) {
		t.Errorf("ordering wrong: single %.3f, 5w %.3f, 10w %.3f", single, five, ten)
	}
}

func TestFig13Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig13", quick())
	if err != nil {
		t.Fatal(err)
	}
	// More rows cost more time per epoch (more sketch bytes), as Table 3.
	if rep.Metrics["row_4_seconds"] <= rep.Metrics["default_seconds"] {
		t.Error("4 rows should be slower per epoch than 2")
	}
	// Wider columns should not hurt convergence.
	if rep.Metrics["col_d/2_loss"] > rep.Metrics["default_loss"]*1.3+0.02 {
		t.Error("wider sketch should not degrade final loss materially")
	}
}

func TestTable4Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("tab4", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Epoch time ordering: SketchML < ZipML-8 < ZipML-16 < float < double.
	order := []string{"SketchML", "ZipML-8bit", "ZipML-16bit", "Adam-float", "Adam"}
	for i := 1; i < len(order); i++ {
		a := rep.Metrics[order[i-1]+"_seconds"]
		b := rep.Metrics[order[i]+"_seconds"]
		if a >= b {
			t.Errorf("%s (%.3fs) should be faster than %s (%.3fs)", order[i-1], a, order[i], b)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	skipUnderRace(t)
	rep, err := Run("fig14", Config{Scale: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All codecs should learn something.
	for _, c := range []string{"SketchML", "Adam", "ZipML-16bit"} {
		if acc := rep.Metrics[c+"_accuracy"]; acc < 0.3 {
			t.Errorf("%s accuracy %.2f, want > 0.3", c, acc)
		}
	}
	// SketchML's compressed rounds finish sooner.
	if rep.Metrics["SketchML_total_seconds"] >= rep.Metrics["Adam_total_seconds"] {
		t.Error("SketchML should complete the iteration budget in less simulated time")
	}
}

func TestAblationMinMax(t *testing.T) {
	rep, err := Run("ablation-minmax", quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["minmax_over_pct"] != 0 {
		t.Errorf("MinMaxSketch overestimated %.2f%%, must be 0", rep.Metrics["minmax_over_pct"])
	}
	if rep.Metrics["countmin_over_pct"] <= 0 {
		t.Error("Count-Min strategy should overestimate under collisions")
	}
}

func TestAblationSign(t *testing.T) {
	rep, err := Run("ablation-sign", quick())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["separated_reversed_pct"] != 0 {
		t.Errorf("separated pipeline reversed %.3f%% of gradients, must be 0",
			rep.Metrics["separated_reversed_pct"])
	}
	if rep.Metrics["joint_reversed_pct"] <= 0 {
		t.Error("joint pipeline should exhibit reversed gradients")
	}
}

func TestAblationGrouping(t *testing.T) {
	rep, err := Run("ablation-grouping", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case error must respect the q/r bound and shrink with r.
	for _, r := range []int{1, 4, 8, 16} {
		worst := rep.Metrics[keyf("r%d_worst", r)]
		if worst >= 256/float64(r) {
			t.Errorf("r=%d worst error %.0f >= bound %d", r, worst, 256/r)
		}
	}
	if rep.Metrics["r16_mean"] > rep.Metrics["r1_mean"] {
		t.Error("more groups should reduce mean error")
	}
}

func keyf(format string, args ...any) string {
	return sprintf(format, args...)
}

func TestAblationQuantile(t *testing.T) {
	rep, err := Run("ablation-quantile", quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{16, 64, 256} {
		rq := rep.Metrics[keyf("q%d_quantile", q)]
		ru := rep.Metrics[keyf("q%d_uniform", q)]
		if rq >= ru {
			t.Errorf("q=%d: quantile rel err %.4f should beat uniform %.4f", q, rq, ru)
		}
	}
}

func TestAblationKeyCodec(t *testing.T) {
	rep, err := Run("ablation-keycodec", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Delta-binary must beat raw 4-byte keys at every density and beat the
	// bitmap at the sparse end.
	for _, nnz := range []int{2000, 20000, 200000} {
		d := rep.Metrics[keyf("nnz%d_delta", nnz)]
		if d >= 4 {
			t.Errorf("nnz=%d: delta %.2f B/key not below 4", nnz, d)
		}
	}
	if rep.Metrics["nnz2000_bitmap"] <= rep.Metrics["nnz2000_delta"] {
		t.Error("bitmap should lose to delta at high sparsity")
	}
}

// sprintf is a tiny alias so shape tests read compactly.
func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestAblationLossy(t *testing.T) {
	rep, err := Run("ablation-lossy", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Error feedback must not hurt Top-K convergence.
	if rep.Metrics["TopK-0.1+EF_loss"] > rep.Metrics["TopK-0.1_loss"]*1.05 {
		t.Error("error feedback should not hurt Top-K convergence")
	}
	// 1-bit messages are the smallest of all.
	if rep.Metrics["OneBit_bytes"] >= rep.Metrics["SketchML_bytes"] {
		t.Error("OneBit messages should be smaller than SketchML's")
	}
	// SketchML converges to a sane loss (its decay costs some epochs but
	// not correctness).
	if rep.Metrics["SketchML_loss"] > rep.Metrics["Adam_loss"]*2 {
		t.Errorf("SketchML loss %.4f too far above Adam %.4f",
			rep.Metrics["SketchML_loss"], rep.Metrics["Adam_loss"])
	}
	// Naive mean-scale 1-bit + error feedback is unstable (the residual
	// inflates the scale); the experiment must surface that divergence.
	if rep.Metrics["OneBit+EF_loss"] < rep.Metrics["OneBit_loss"] {
		t.Log("note: OneBit+EF stabilized on this run")
	}
}

func TestAblationSketchAlgo(t *testing.T) {
	rep, err := Run("ablation-sketch", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Both sketches must produce working codecs with comparable quality.
	gk, kll := rep.Metrics["GK_l2"], rep.Metrics["KLL_l2"]
	if gk <= 0 || kll <= 0 {
		t.Fatalf("degenerate reconstruction errors: gk=%v kll=%v", gk, kll)
	}
	if gk > kll*3 || kll > gk*3 {
		t.Errorf("GK (%.3e) and KLL (%.3e) reconstruction quality diverges >3x", gk, kll)
	}
	// The wire size must not depend on the sketch choice materially.
	if b1, b2 := rep.Metrics["GK_bytes"], rep.Metrics["KLL_bytes"]; math.Abs(b1-b2) > 0.05*b1 {
		t.Errorf("message sizes diverge: GK %v vs KLL %v", b1, b2)
	}
}

func TestExtensionParameterServer(t *testing.T) {
	rep, err := Run("extension-ps", quick())
	if err != nil {
		t.Fatal(err)
	}
	// Sharding the aggregation link must help uncompressed Adam more than
	// already-compressed SketchML.
	adamSpeedup := rep.Metrics["Adam_ps_speedup"]
	skSpeedup := rep.Metrics["SketchML_ps_speedup"]
	if adamSpeedup <= 1 {
		t.Errorf("PS should speed up Adam: %.2fx", adamSpeedup)
	}
	if adamSpeedup <= skSpeedup {
		t.Errorf("PS should help Adam (%.2fx) more than SketchML (%.2fx)", adamSpeedup, skSpeedup)
	}
}

func TestExtensionFM(t *testing.T) {
	rep, err := Run("extension-fm", quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"SketchML", "Adam", "ZipML-16bit"} {
		if acc := rep.Metrics[c+"_accuracy"]; acc < 0.6 {
			t.Errorf("%s FM accuracy %.2f, want > 0.6", c, acc)
		}
	}
	if rep.Metrics["SketchML_seconds"] >= rep.Metrics["Adam_seconds"] {
		t.Error("SketchML should be faster per epoch on FM gradients too")
	}
}

func TestExtensionSSP(t *testing.T) {
	rep, err := Run("extension-ssp", quick())
	if err != nil {
		t.Fatal(err)
	}
	// More staleness -> the first epoch of updates lands sooner.
	if rep.Metrics["s8_first_epoch_seconds"] >= rep.Metrics["s0_first_epoch_seconds"] {
		t.Error("staleness 8 should land the first epoch sooner than BSP")
	}
	// Convergence survives the staleness.
	for _, s := range []int{0, 2, 8} {
		if loss := rep.Metrics[keyf("s%d_loss", s)]; loss > 0.6 {
			t.Errorf("staleness %d: loss %.4f, want < 0.6", s, loss)
		}
	}
}
