// Benchmarks regenerating every table and figure of the SketchML paper's
// evaluation (go test -bench=. -benchmem). Each benchmark runs the
// corresponding experiment end-to-end and reports its headline metrics via
// b.ReportMetric, so `go test -bench Fig9a` prints the reproduction numbers
// the paper's Figure 9(a) reports. cmd/sketchbench runs the same
// experiments at full scale with complete tables.
package sketchml_test

import (
	"math/rand"
	"testing"

	"sketchml"
)

// benchScale keeps each experiment benchmark iteration in the low seconds.
const benchScale = 0.34

// runExperiment executes the experiment once per benchmark iteration and
// publishes the chosen metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	cfg := sketchml.ExperimentConfig{Scale: benchScale, Seed: 1}
	var rep *sketchml.ExperimentReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = sketchml.RunExperiment(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for key, unit := range metrics {
		v, ok := rep.Metrics[key]
		if !ok {
			b.Fatalf("experiment %s did not report metric %q", id, key)
		}
		b.ReportMetric(v, unit)
	}
}

// BenchmarkFig4GradientHistogram regenerates Figure 4: the nonuniform,
// near-zero-concentrated distribution of gradient values.
func BenchmarkFig4GradientHistogram(b *testing.B) {
	runExperiment(b, "fig4", map[string]string{
		"fraction_near_zero": "frac-near-zero",
	})
}

// BenchmarkFig8aAblation regenerates Figure 8(a): epoch time for Adam,
// Adam+Key, Adam+Key+Quan, and full SketchML.
func BenchmarkFig8aAblation(b *testing.B) {
	runExperiment(b, "fig8a", map[string]string{
		"SketchML_LR_speedup": "LR-speedup-x",
		"Adam+Key_LR_speedup": "key-only-speedup-x",
	})
}

// BenchmarkFig8bMessageSize regenerates Figure 8(b): message size and
// compression rate per component stage.
func BenchmarkFig8bMessageSize(b *testing.B) {
	runExperiment(b, "fig8b", map[string]string{
		"SketchML_rate":  "compression-x",
		"SketchML_bytes": "msg-bytes",
	})
}

// BenchmarkFig8cCPUOverhead regenerates Figure 8(c): the CPU cost of the
// compression pipeline.
func BenchmarkFig8cCPUOverhead(b *testing.B) {
	runExperiment(b, "fig8c", map[string]string{
		"SketchML_codec_share_pct": "codec-cpu-pct",
	})
}

// BenchmarkFig8dSparsity regenerates Figure 8(d): batch ratio vs gradient
// sparsity, run time, and delta-key bytes.
func BenchmarkFig8dSparsity(b *testing.B) {
	runExperiment(b, "fig8d", map[string]string{
		"ratio_0.1_bytes_per_key":  "bytes-per-key@10pct",
		"ratio_0.01_bytes_per_key": "bytes-per-key@1pct",
	})
}

// BenchmarkFig9aKDD12 regenerates Figure 9(a): end-to-end epoch time on the
// KDD12-like dataset, 10 workers.
func BenchmarkFig9aKDD12(b *testing.B) {
	runExperiment(b, "fig9a", map[string]string{
		"SketchML_LR_speedup":    "LR-speedup-x",
		"ZipML-16bit_LR_speedup": "zipml-LR-speedup-x",
	})
}

// BenchmarkFig9bCTR regenerates Figure 9(b): end-to-end epoch time on the
// denser CTR-like dataset, 50 workers (smaller speedups, Section 4.3.2).
func BenchmarkFig9bCTR(b *testing.B) {
	runExperiment(b, "fig9b", map[string]string{
		"SketchML_LR_speedup":  "LR-speedup-x",
		"SketchML_SVM_speedup": "SVM-speedup-x",
	})
}

// BenchmarkFig10Convergence regenerates Figure 10: loss vs simulated time
// curves for the three codecs.
func BenchmarkFig10Convergence(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"SketchML_LR_KDD12_time_to_target": "sk-time-to-adam-loss-s",
		"Adam_LR_KDD12_time_to_target":     "adam-time-to-adam-loss-s",
	})
}

// BenchmarkTable2Accuracy regenerates Table 2: minimal loss and simulated
// time to the <1%-variation-in-5-epochs convergence criterion.
func BenchmarkTable2Accuracy(b *testing.B) {
	runExperiment(b, "tab2", map[string]string{
		"SketchML_LR_min_loss":     "sk-LR-loss",
		"Adam_LR_min_loss":         "adam-LR-loss",
		"SketchML_LR_conv_seconds": "sk-LR-conv-s",
	})
}

// BenchmarkFig11Scalability regenerates Figure 11: 5/10/50-worker epoch
// times, with Adam degrading at 50 while SketchML improves.
func BenchmarkFig11Scalability(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"Adam_LR_w10_seconds":     "adam-10w-s",
		"Adam_LR_w50_seconds":     "adam-50w-s",
		"SketchML_LR_w50_seconds": "sk-50w-s",
	})
}

// BenchmarkFig12SingleNode regenerates Figure 12 (Appendix B.1): the
// distributed runs against a single-node baseline.
func BenchmarkFig12SingleNode(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"SingleNode_LR_seconds":  "single-s",
		"SketchML-10_LR_seconds": "sk-10w-s",
	})
}

// BenchmarkFig13Sensitivity regenerates Figure 13 + Table 3: quantile size,
// sketch rows, sketch columns.
func BenchmarkFig13Sensitivity(b *testing.B) {
	runExperiment(b, "fig13", map[string]string{
		"default_seconds": "default-s",
		"row_4_seconds":   "rows4-s",
	})
}

// BenchmarkFig14NeuralNet regenerates Figure 14 (Appendix B.3): MLP
// convergence with compressed dense gradients.
func BenchmarkFig14NeuralNet(b *testing.B) {
	runExperiment(b, "fig14", map[string]string{
		"SketchML_accuracy": "sk-accuracy",
		"Adam_accuracy":     "adam-accuracy",
	})
}

// BenchmarkTable4WeightTypes regenerates Table 4 (Appendix B.4): SketchML
// against 8/16-bit ZipML and float/double Adam.
func BenchmarkTable4WeightTypes(b *testing.B) {
	runExperiment(b, "tab4", map[string]string{
		"SketchML_seconds":   "sk-s",
		"ZipML-8bit_seconds": "zipml8-s",
		"Adam_seconds":       "adam-double-s",
	})
}

// ---- ablation benches for the design choices DESIGN.md calls out ----

// BenchmarkAblationMinMaxVsCountMin contrasts min-insert/max-query against
// the Count-Min additive strategy.
func BenchmarkAblationMinMaxVsCountMin(b *testing.B) {
	runExperiment(b, "ablation-minmax", map[string]string{
		"minmax_over_pct":   "minmax-overest-pct",
		"countmin_over_pct": "countmin-overest-pct",
	})
}

// BenchmarkAblationSignSeparation measures reversed-gradient rates with and
// without positive/negative separation.
func BenchmarkAblationSignSeparation(b *testing.B) {
	runExperiment(b, "ablation-sign", map[string]string{
		"joint_reversed_pct":     "joint-reversed-pct",
		"separated_reversed_pct": "separated-reversed-pct",
	})
}

// BenchmarkAblationGrouping measures decoded index error against the group
// count r.
func BenchmarkAblationGrouping(b *testing.B) {
	runExperiment(b, "ablation-grouping", map[string]string{
		"r1_mean": "r1-mean-err",
		"r8_mean": "r8-mean-err",
	})
}

// BenchmarkAblationQuantileVsUniform measures relative quantization error
// of equal-population vs equal-width buckets.
func BenchmarkAblationQuantileVsUniform(b *testing.B) {
	runExperiment(b, "ablation-quantile", map[string]string{
		"q256_quantile": "quantile-rel-err",
		"q256_uniform":  "uniform-rel-err",
	})
}

// BenchmarkAblationKeyCodecs measures bytes/key for delta-binary, varint,
// and bitmap key encodings.
func BenchmarkAblationKeyCodecs(b *testing.B) {
	runExperiment(b, "ablation-keycodec", map[string]string{
		"nnz20000_delta":  "delta-bytes-per-key",
		"nnz20000_varint": "varint-bytes-per-key",
	})
}

// ---- codec micro-benchmarks on a realistic gradient ----

func benchGradient() *sketchml.Gradient {
	rng := rand.New(rand.NewSource(11))
	m := map[uint64]float64{}
	for len(m) < 20_000 {
		v := rng.ExpFloat64() * 0.02
		if rng.Intn(2) == 0 {
			v = -v
		}
		m[uint64(rng.Int63n(400_000))] = v
	}
	return sketchml.GradientFromMap(400_000, m)
}

// BenchmarkCompressorEncode measures SketchML encode throughput.
func BenchmarkCompressorEncode(b *testing.B) {
	g := benchGradient()
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Encode(g); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
}

// BenchmarkCompressorDecode measures SketchML decode throughput.
func BenchmarkCompressorDecode(b *testing.B) {
	g := benchGradient()
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	msg, err := comp.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
}

// BenchmarkAblationLossyBaselines measures the related-work lossy codecs
// (1-bit SGD, Top-K, error feedback) against SketchML.
func BenchmarkAblationLossyBaselines(b *testing.B) {
	runExperiment(b, "ablation-lossy", map[string]string{
		"SketchML_loss": "sk-loss",
		"OneBit_loss":   "onebit-loss",
		"TopK-0.1_loss": "topk-loss",
	})
}

// BenchmarkExtensionParameterServer measures the sharded parameter-server
// topology against the single driver at 50 workers.
func BenchmarkExtensionParameterServer(b *testing.B) {
	runExperiment(b, "extension-ps", map[string]string{
		"Adam_ps_speedup":     "adam-ps-speedup-x",
		"SketchML_ps_speedup": "sk-ps-speedup-x",
	})
}

// BenchmarkExtensionFactorizationMachine trains an FM through each codec.
func BenchmarkExtensionFactorizationMachine(b *testing.B) {
	runExperiment(b, "extension-fm", map[string]string{
		"SketchML_accuracy": "sk-fm-accuracy",
		"SketchML_seconds":  "sk-fm-s",
	})
}

// BenchmarkExtensionSSP measures stale-synchronous-parallel training under
// a straggler across staleness bounds.
func BenchmarkExtensionSSP(b *testing.B) {
	runExperiment(b, "extension-ssp", map[string]string{
		"s0_first_epoch_seconds": "bsp-first-epoch-s",
		"s8_first_epoch_seconds": "ssp8-first-epoch-s",
	})
}
