// MLP on MNIST-like images with compressed gradient exchange — the paper's
// Appendix B.3 experiment as a runnable demo. Dense neural-net gradients
// exercise SketchML's value path (quantile buckets + MinMaxSketch) while
// key compression is moot.
package main

import (
	"fmt"
	"log"

	"sketchml"
	"sketchml/internal/nn"
)

func main() {
	full := sketchml.MNISTLike(1, 1200, 20) // 20x20 synthetic digit images
	train, test := full.Split(0.8, 1)
	fmt.Printf("MNIST-like: %d train / %d test images, 400 pixels each\n\n", train.N(), test.N())

	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []sketchml.Codec{comp, &sketchml.RawCodec{}} {
		net, err := nn.New([]int{400, 64, 10}, 5)
		if err != nil {
			log.Fatal(err)
		}
		opt := sketchml.NewAdam(0.01, net.ParamDim())
		batcher := newBatcher(train)
		var sent int64
		const iters = 250
		for it := 0; it < iters; it++ {
			batch := batcher.next(60)
			_, dense, err := net.LossAndGradient(batch)
			if err != nil {
				log.Fatal(err)
			}
			// The gradient crosses the codec exactly as it would cross the
			// network in a distributed run.
			msg, err := c.Encode(sketchml.GradientFromDense(dense, 0))
			if err != nil {
				log.Fatal(err)
			}
			sent += int64(len(msg))
			dec, err := c.Decode(msg)
			if err != nil {
				log.Fatal(err)
			}
			if err := opt.Step(net.Params(), dec); err != nil {
				log.Fatal(err)
			}
		}
		loss, err := net.Loss(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s test loss %.4f, accuracy %.3f, %6.1f KB/step gradient traffic\n",
			c.Name(), loss, net.Accuracy(test), float64(sent)/iters/1024)
	}
	fmt.Println("\nCompressed training reaches comparable accuracy with far less traffic.")
}

// batcher cycles deterministically through the training set.
type batcher struct {
	d   *sketchml.Dataset
	pos int
}

func newBatcher(d *sketchml.Dataset) *batcher { return &batcher{d: d} }

func (b *batcher) next(n int) []*sketchml.Instance {
	out := make([]*sketchml.Instance, 0, n)
	for len(out) < n {
		out = append(out, &b.d.Instances[b.pos])
		b.pos = (b.pos + 1) % b.d.N()
	}
	return out
}
