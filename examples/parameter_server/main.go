// Parameter-server topology: the key space is load-balanced across several
// aggregation servers with parallel links, dividing the single-driver
// bottleneck that makes uncompressed training stop scaling. Run side by
// side with SketchML compression to see that topology and compression
// attack the same bottleneck from different directions — and compose.
package main

import (
	"fmt"
	"log"

	"sketchml"
)

func main() {
	full := sketchml.KDD12Like(1)
	train, test := full.Split(0.75, 1)
	const workers = 32
	fmt.Printf("KDD12-like, %d workers, driver vs 4-server parameter server\n\n", workers)

	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []sketchml.Codec{&sketchml.RawCodec{}, comp} {
		fmt.Printf("codec %s:\n", c.Name())
		var base float64
		for _, servers := range []int{1, 4} {
			res, err := sketchml.TrainPS(sketchml.TrainConfig{
				Model:   sketchml.LogisticRegression(),
				Codec:   c,
				Workers: workers,
				Epochs:  2,
				Lambda:  0.01,
				Seed:    1,
				Network: sketchml.ProductionCluster(),
			}, servers, train, test)
			if err != nil {
				log.Fatal(err)
			}
			sec := res.AvgEpochSimTime().Seconds()
			if servers == 1 {
				base = sec
			}
			fmt.Printf("  %d server(s): %6.3f sim s/epoch (%.2fx), final loss %.4f\n",
				servers, sec, base/sec, res.FinalLoss)
		}
		fmt.Println()
	}
	fmt.Println("Sharding rescues the uncompressed baseline; SketchML needs it less")
	fmt.Println("because its messages are already small — and the two compose.")
}
