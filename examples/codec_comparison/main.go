// Codec comparison: every gradient codec in the repository applied to the
// same realistic gradient, reporting size, compression rate, and value
// fidelity — the paper's Figure 8(b) and Table 4 in miniature.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sketchml"
	"sketchml/internal/codec"
	"sketchml/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const dim = 500_000
	m := map[uint64]float64{}
	for len(m) < 40_000 {
		v := rng.ExpFloat64() * 0.02
		if rng.Intn(2) == 0 {
			v = -v
		}
		m[uint64(rng.Int63n(dim))] = v
	}
	g := sketchml.GradientFromMap(dim, m)
	fmt.Printf("gradient: %d nonzeros over %d dims (%.3f%% dense)\n\n",
		g.NNZ(), g.Dim, 100*g.Sparsity())

	keyOnly := codec.DefaultOptions()
	keyOnly.Quantize, keyOnly.MinMax = false, false
	keyQuan := codec.DefaultOptions()
	keyQuan.MinMax = false

	codecs := []sketchml.Codec{
		&codec.Raw{},
		&codec.Raw{Float32: true},
		&codec.ZipML{Bits: 16},
		&codec.ZipML{Bits: 8},
		codec.MustSketchML(keyOnly),
		codec.MustSketchML(keyQuan),
		codec.MustSketchML(codec.DefaultOptions()),
	}

	var rawSize int
	table := stats.NewTable("codec", "bytes", "rate", "keys exact", "mean rel err %", "sign flips")
	for _, c := range codecs {
		msg, err := c.Encode(g)
		if err != nil {
			log.Fatal(err)
		}
		back, err := c.Decode(msg)
		if err != nil {
			log.Fatal(err)
		}
		if rawSize == 0 {
			rawSize = len(msg)
		}
		exact := back.NNZ() == g.NNZ()
		var relSum float64
		flips := 0
		for i := range g.Keys {
			if back.Keys[i] != g.Keys[i] {
				exact = false
			}
			v, d := g.Values[i], back.Values[i]
			relSum += math.Abs(v-d) / math.Abs(v)
			if v*d < 0 {
				flips++
			}
		}
		table.AddRow(c.Name(), len(msg), float64(rawSize)/float64(len(msg)),
			exact, 100*relSum/float64(g.NNZ()), flips)
	}
	fmt.Println(table.String())
	fmt.Println("Keys are exact for every codec; only value fidelity and size differ.")
}
