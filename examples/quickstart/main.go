// Quickstart: compress one sparse gradient with SketchML and inspect what
// came back — exact keys, sign-preserving decayed values, and a fraction of
// the raw size.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sketchml"
)

func main() {
	// Build a realistic sparse gradient: 10,000 nonzeros over a
	// 1,000,000-dimension model, values concentrated near zero with both
	// signs — the distribution the paper's Figure 4 shows.
	rng := rand.New(rand.NewSource(42))
	const dim = 200_000
	values := map[uint64]float64{}
	for len(values) < 10_000 {
		v := rng.ExpFloat64() * 0.01
		if rng.Intn(2) == 0 {
			v = -v
		}
		values[uint64(rng.Int63n(dim))] = v
	}
	grad := sketchml.GradientFromMap(dim, values)

	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	msg, err := comp.Encode(grad)
	if err != nil {
		log.Fatal(err)
	}
	back, err := comp.Decode(msg)
	if err != nil {
		log.Fatal(err)
	}

	raw, err := (&sketchml.RawCodec{}).Encode(grad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gradient: %d nonzeros over %d dimensions\n", grad.NNZ(), grad.Dim)
	fmt.Printf("raw message:      %7d bytes\n", len(raw))
	fmt.Printf("SketchML message: %7d bytes (%.2fx compression)\n",
		len(msg), float64(len(raw))/float64(len(msg)))

	// Where did the bytes go?
	bd, err := comp.Analyze(grad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("breakdown: keys %dB, sketch+indexes %dB, bucket means %dB, header %dB\n",
		bd.Keys, bd.Values, bd.Meta, bd.Header)

	// Check the decoding guarantees.
	exactKeys := back.NNZ() == grad.NNZ()
	signFlips, amplified := 0, 0
	var relErrSum float64
	for i := range grad.Keys {
		if back.Keys[i] != grad.Keys[i] {
			exactKeys = false
		}
		v, d := grad.Values[i], back.Values[i]
		if v*d < 0 {
			signFlips++
		}
		if math.Abs(d) > grad.MaxAbs() {
			amplified++
		}
		relErrSum += math.Abs(v-d) / math.Abs(v)
	}
	fmt.Printf("keys lossless: %v\n", exactKeys)
	fmt.Printf("sign flips: %d, out-of-range amplifications: %d\n", signFlips, amplified)
	fmt.Printf("mean relative value error: %.1f%% (decay the optimizer absorbs)\n",
		100*relErrSum/float64(grad.NNZ()))
}
