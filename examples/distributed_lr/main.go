// Distributed logistic regression over real loopback TCP: workers exchange
// SketchML-compressed gradients with a driver exactly as the paper's
// Spark executors do, and the run is compared against the uncompressed
// baseline.
package main

import (
	"fmt"
	"log"

	"sketchml"
)

func main() {
	full := sketchml.KDD12Like(1)
	train, test := full.Split(0.75, 1)
	fmt.Printf("KDD12-like: %d train / %d test instances, D=%d\n\n",
		train.N(), test.N(), full.Dim)

	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []sketchml.Codec{comp, &sketchml.RawCodec{}} {
		res, err := sketchml.Train(sketchml.TrainConfig{
			Model:   sketchml.LogisticRegression(),
			Codec:   c,
			Workers: 4,
			Epochs:  3,
			Lambda:  0.01,
			Seed:    1,
			UseTCP:  true, // every gradient really crosses a TCP socket
			Network: sketchml.ProductionCluster(),
		}, train, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("codec %-10s", c.Name())
		fmt.Printf(" final loss %.4f, accuracy %.3f\n", res.FinalLoss, res.FinalAccuracy)
		for _, e := range res.Epochs {
			fmt.Printf("  epoch %d: %6.1f KB/round up, simulated %6.3fs/epoch on a 10-node cluster\n",
				e.Epoch, float64(e.UpBytes)/float64(e.Rounds)/1024, e.SimTime.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("Same convergence, a fraction of the traffic — the SketchML result.")
}
