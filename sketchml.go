// Package sketchml is a Go implementation of SketchML (Jiang, Fu, Yang,
// Cui — SIGMOD 2018): sketch-based compression of the sparse key–value
// gradients exchanged during distributed machine learning.
//
// A SketchML message compresses a sparse gradient {(k_j, v_j)} with three
// cooperating components:
//
//   - Quantile-bucket quantification: a streaming quantile sketch summarizes
//     the (highly nonuniform, near-zero-concentrated) gradient values into q
//     equal-population buckets; each value is replaced by its bucket index.
//   - MinMaxSketch: a new sketch structure that stores the bucket indexes in
//     s hash tables with a min-on-insert / max-on-query collision rule, so
//     decoding can only decay a gradient, never amplify or sign-flip it.
//   - Delta-binary key encoding: the sorted integer keys are stored as
//     increments in the fewest whole bytes, losslessly.
//
// The package exposes the compression codecs (including the paper's Adam
// and ZipML baselines), the distributed trainer that exchanges compressed
// gradients between workers and a driver, synthetic dataset generators, and
// the experiment harness that regenerates every table and figure of the
// paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for reproduction results.
//
// Quick start:
//
//	grad := sketchml.GradientFromMap(1_000_000, map[uint64]float64{42: 0.5, 1000: -0.25})
//	comp, _ := sketchml.NewCompressor(sketchml.DefaultOptions())
//	msg, _ := comp.Encode(grad)
//	back, _ := comp.Decode(msg)
package sketchml

import (
	"context"

	"sketchml/internal/cluster"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/experiments"
	"sketchml/internal/gradient"
	"sketchml/internal/model"
	"sketchml/internal/obs"
	"sketchml/internal/optim"
	"sketchml/internal/trainer"
)

// Gradient is a sparse gradient vector: parallel Keys/Values with keys
// strictly ascending, over a model of Dim dimensions.
type Gradient = gradient.Sparse

// NewGradient creates an empty gradient over dim dimensions with capacity
// hint n.
func NewGradient(dim uint64, n int) *Gradient { return gradient.NewSparse(dim, n) }

// GradientFromMap builds a gradient from an unordered key→value map.
func GradientFromMap(dim uint64, m map[uint64]float64) *Gradient {
	return gradient.FromMap(dim, m)
}

// GradientFromDense sparsifies a dense vector, keeping |v| > threshold.
func GradientFromDense(dense []float64, threshold float64) *Gradient {
	return gradient.FromDense(dense, threshold)
}

// Codec converts gradients to wire messages and back. Keys always survive
// exactly; values may be quantized depending on the codec.
type Codec = codec.Codec

// Options configures the SketchML compressor; start from DefaultOptions.
type Options = codec.Options

// DefaultOptions returns the paper's default configuration: q=256 buckets,
// quantile sketch size 128, a 2×(d/5) MinMaxSketch in 8 groups, and all
// three components enabled.
func DefaultOptions() Options { return codec.DefaultOptions() }

// Compressor is the SketchML codec.
type Compressor = codec.SketchML

// NewCompressor validates opts and builds a SketchML compressor.
func NewCompressor(opts Options) (*Compressor, error) { return codec.NewSketchML(opts) }

// RawCodec is the uncompressed baseline the paper calls "Adam": fixed-width
// keys and IEEE float values.
type RawCodec = codec.Raw

// ZipMLCodec is the uniform fixed-point quantification baseline.
type ZipMLCodec = codec.ZipML

// OneBitCodec is the 1-bit SGD threshold-truncation baseline from the
// paper's related work.
type OneBitCodec = codec.OneBit

// TopKCodec keeps only the largest-magnitude fraction of gradient entries.
type TopKCodec = codec.TopK

// NewErrorFeedback wraps any lossy codec with residual compensation: the
// compression error of each message is added to the next gradient. One
// instance per sender (see TrainConfig.CodecFactory).
func NewErrorFeedback(inner Codec) Codec { return codec.NewErrorFeedback(inner) }

// Breakdown attributes an encoded message's bytes to keys, values, and
// quantizer metadata.
type Breakdown = codec.Breakdown

// Dataset is a collection of sparse labeled instances.
type Dataset = dataset.Dataset

// Instance is one training example.
type Instance = dataset.Instance

// SyntheticConfig describes a synthetic sparse dataset drawn from a Zipf
// feature distribution.
type SyntheticConfig = dataset.SyntheticConfig

// Synthetic dataset constructors; the *Like presets are scaled-down
// stand-ins for the paper's Table 1 datasets.
var (
	GenerateDataset = dataset.Generate
	KDD10Like       = dataset.KDD10Like
	KDD12Like       = dataset.KDD12Like
	CTRLike         = dataset.CTRLike
	MNISTLike       = dataset.MNISTLike
	ParseLibSVM     = dataset.ParseLibSVM
	WriteLibSVM     = dataset.WriteLibSVM
)

// Model is a generalized linear model trained by mini-batch SGD.
type Model = model.Model

// The paper's three evaluated models.
var (
	LogisticRegression = func() Model { return model.LogisticRegression{} }
	SVM                = func() Model { return model.SVM{} }
	LinearRegression   = func() Model { return model.Linear{} }
	ModelByName        = model.ByName
)

// Optimizer applies sparse gradients to a dense parameter vector.
type Optimizer = optim.Optimizer

// NewAdam returns the Adam optimizer with the paper's hyper-parameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64, dim uint64) Optimizer { return optim.NewAdam(lr, dim) }

// NewSGD returns plain SGD.
func NewSGD(lr float64) Optimizer { return optim.NewSGD(lr) }

// TrainConfig configures a distributed training run.
type TrainConfig = trainer.Config

// TrainResult reports per-epoch statistics and the convergence curve.
type TrainResult = trainer.Result

// EpochStats is one epoch of a training run.
type EpochStats = trainer.EpochStats

// ChaosSpec configures seeded fault injection on the training links (set
// TrainConfig.Chaos): per-direction drop/corrupt/duplicate/delay
// probabilities, all decided deterministically from the seed.
type ChaosSpec = cluster.ChaosSpec

// OutageWindow marks a range of frame ordinals during which a link drops
// everything — a transient disconnect that later heals (set
// TrainConfig.ChaosOutage).
type OutageWindow = cluster.OutageWindow

// Topology selects the gather aggregation shape of a driver run (set
// TrainConfig.Topology): star decodes every worker's message at the driver,
// tree and ring merge encoded messages wire-to-wire on their way there.
// tree/ring require a mergeable codec (codec.Merger — SketchML and Raw).
type Topology = cluster.Topology

// Gather topology values for TrainConfig.Topology.
const (
	TopologyStar = cluster.TopologyStar
	TopologyTree = cluster.TopologyTree
	TopologyRing = cluster.TopologyRing
)

// ParseTopology maps "star" (or ""), "tree", and "ring" to a Topology.
func ParseTopology(s string) (Topology, error) { return cluster.ParseTopology(s) }

// Train executes the paper's synchronous distributed training loop:
// the training set is sharded over cfg.Workers workers, each round every
// worker's gradient travels through cfg.Codec to the driver, and the
// aggregate is broadcast back.
func Train(cfg TrainConfig, train, test *Dataset) (*TrainResult, error) {
	return trainer.Run(cfg, train, test)
}

// NetworkModel converts measured traffic into simulated cluster epoch
// times.
type NetworkModel = cluster.NetworkModel

// Reproduction-scaled network models (see internal/cluster).
var (
	LabCluster        = cluster.LabCluster
	ProductionCluster = cluster.ProductionCluster
)

// ExperimentConfig scales an experiment run.
type ExperimentConfig = experiments.Config

// ExperimentReport is the rendered and metric output of one experiment.
type ExperimentReport = experiments.Report

// RunExperiment regenerates one of the paper's tables or figures by id
// (e.g. "fig8a", "tab2"); ExperimentIDs lists them all.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentReport, error) {
	return experiments.Run(id, cfg)
}

// ExperimentIDs returns every experiment id in stable order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the human title for an experiment id.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// TrainPS executes training on the sharded parameter-server topology (an
// extension beyond the paper's single-driver design): the key space is
// load-balanced across `servers` aggregators with parallel links.
func TrainPS(cfg TrainConfig, servers int, train, test *Dataset) (*TrainResult, error) {
	return trainer.RunPS(cfg, servers, train, test)
}

// Trainable is the general model contract the trainer accepts (set
// TrainConfig.Trainable); generalized linear models are adapted
// automatically from TrainConfig.Model.
type Trainable = model.Trainable

// FactorizationMachine is a second-order factorization machine with k
// latent factors per feature — sparse gradients over a D·(1+k) parameter
// space, compressible by every codec in this package.
type FactorizationMachine = model.FM

// NewAdaGrad returns the AdaGrad optimizer (Duchi et al.), the other
// adaptive method of the paper's related work.
func NewAdaGrad(lr float64, dim uint64) Optimizer { return optim.NewAdaGrad(lr, dim) }

// Metrics is the run-wide observability registry: atomic counters, gauges,
// log-spaced latency histograms, and a bounded span trace, exportable as
// one JSON snapshot. Pass the same registry to Options.Metrics and
// TrainConfig.Metrics for a coherent cross-layer view; a nil registry
// disables everything at negligible cost.
type Metrics = obs.Registry

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// RunReport is the validated JSON document summarizing one training run:
// per-epoch wire bytes and compression ratio against the raw float64
// baseline, per-stage time breakdown, measured sketch recovery error, and
// the full metrics snapshot.
type RunReport = obs.RunReport

// SketchErrorSummary is the continuously measured sketch recovery error of
// a run (see TrainResult.SketchError).
type SketchErrorSummary = obs.ErrorSummary

// BuildRunReport assembles a validated RunReport from a finished training
// run. m may be nil; pass the registry the run recorded into to embed and
// cross-check its snapshot.
func BuildRunReport(tool string, res *TrainResult, m *Metrics) (*RunReport, error) {
	return trainer.BuildRunReport(tool, res, m)
}

// ReadRunReport loads and validates a run report written by
// RunReport.WriteFile (or `sketchml -metrics-out`).
func ReadRunReport(path string) (*RunReport, error) { return obs.ReadReportFile(path) }

// TrainSSP executes training under the Stale Synchronous Parallel protocol
// (Ho et al., the paper's citation [19]): workers may run ahead of the
// slowest peer by at most `staleness` iterations. speeds scales each
// worker's compute time (nil = uniform); pass a slow factor to study
// stragglers.
func TrainSSP(cfg TrainConfig, staleness int, speeds []float64, train, test *Dataset) (*TrainResult, error) {
	return trainer.RunSSP(cfg, staleness, speeds, train, test)
}

// TrainContext is Train bounded by a context: cancellation unblocks every
// receive and stops the run within one round (plus TrainConfig.RoundDeadline
// in tolerant mode), returning an error that wraps ctx.Err(). For a
// graceful stop that checkpoints instead, close TrainConfig.Drain.
func TrainContext(ctx context.Context, cfg TrainConfig, train, test *Dataset) (*TrainResult, error) {
	return trainer.RunContext(ctx, cfg, train, test)
}

// TrainPSContext is TrainPS bounded by a context.
func TrainPSContext(ctx context.Context, cfg TrainConfig, servers int, train, test *Dataset) (*TrainResult, error) {
	return trainer.RunPSContext(ctx, cfg, servers, train, test)
}

// TrainSSPContext is TrainSSP bounded by a context.
func TrainSSPContext(ctx context.Context, cfg TrainConfig, staleness int, speeds []float64, train, test *Dataset) (*TrainResult, error) {
	return trainer.RunSSPContext(ctx, cfg, staleness, speeds, train, test)
}

// Checkpoint is a crash-safe snapshot of a training run at a round
// boundary: parameters, optimizer state, round counter, and the config
// fingerprint that guards resumption, all behind a checksum. Produce one
// via TrainConfig.OnCheckpoint (periodic, and final on drain); resume by
// setting TrainConfig.Resume.
type Checkpoint = trainer.Checkpoint

// UnmarshalCheckpoint decodes and verifies a checkpoint blob written by
// Checkpoint.Marshal. Corrupt input fails with ErrCheckpointCorrupt.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	return trainer.UnmarshalCheckpoint(data)
}

// ErrCheckpointCorrupt classifies every structural checkpoint decode
// failure (bad magic, truncation, checksum mismatch).
var ErrCheckpointCorrupt = trainer.ErrCheckpointCorrupt
