package sketchml_test

import (
	"math"
	"testing"

	"sketchml"
)

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment flow must work verbatim.
	grad := sketchml.GradientFromMap(1_000_000, map[uint64]float64{42: 0.5, 1000: -0.25})
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	msg, err := comp.Encode(grad)
	if err != nil {
		t.Fatal(err)
	}
	back, err := comp.Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 2 || back.Keys[0] != 42 || back.Keys[1] != 1000 {
		t.Fatalf("keys corrupted: %v", back.Keys)
	}
	if back.Values[0] < 0 || back.Values[1] > 0 {
		t.Fatalf("signs corrupted: %v", back.Values)
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	d := sketchml.KDD10Like(7)
	// Build a realistic aggregate gradient from the first 10% of instances.
	m := map[uint64]float64{}
	for i := 0; i < d.N()/10; i++ {
		in := d.Instances[i]
		for j, k := range in.Keys {
			m[k] += -in.Label * in.Values[j] * 0.01
		}
	}
	g := sketchml.GradientFromMap(d.Dim, m)

	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sk, err := comp.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := (&sketchml.RawCodec{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(raw)) / float64(len(sk)); ratio < 3 {
		t.Errorf("compression ratio %.2f, want >= 3", ratio)
	}
}

func TestTrainFacade(t *testing.T) {
	full := sketchml.KDD10Like(3)
	train, test := full.Split(0.75, 1)
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketchml.Train(sketchml.TrainConfig{
		Model:   sketchml.LogisticRegression(),
		Codec:   comp,
		Workers: 4,
		Epochs:  2,
		Lambda:  0.01,
		Seed:    1,
	}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("%d epochs", len(res.Epochs))
	}
	if res.FinalAccuracy < 0.6 {
		t.Errorf("accuracy %.2f", res.FinalAccuracy)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Error("NaN loss")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := sketchml.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("%d ids", len(ids))
	}
	rep, err := sketchml.RunExperiment("ablation-keycodec", sketchml.ExperimentConfig{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text == "" || len(rep.Metrics) == 0 {
		t.Error("empty report")
	}
	if sketchml.ExperimentTitle("fig4") == "" {
		t.Error("missing title")
	}
}

func TestModelByName(t *testing.T) {
	for _, n := range []string{"LR", "SVM", "Linear"} {
		if _, err := sketchml.ModelByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestTopologyFacades(t *testing.T) {
	full := sketchml.KDD10Like(9)
	train, test := full.Split(0.75, 1)
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sketchml.TrainConfig{
		Model:   sketchml.LogisticRegression(),
		Codec:   comp,
		Workers: 3,
		Epochs:  2,
		Lambda:  0.01,
		Seed:    1,
	}
	ps, err := sketchml.TrainPS(cfg, 2, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if ps.FinalAccuracy < 0.6 {
		t.Errorf("PS accuracy %.2f", ps.FinalAccuracy)
	}
	ssp, err := sketchml.TrainSSP(cfg, 2, []float64{1, 1, 4}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if ssp.FinalAccuracy < 0.6 {
		t.Errorf("SSP accuracy %.2f", ssp.FinalAccuracy)
	}
}

func TestFactorizationMachineFacade(t *testing.T) {
	full := sketchml.KDD10Like(5)
	train, test := full.Split(0.75, 1)
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketchml.Train(sketchml.TrainConfig{
		Trainable: sketchml.FactorizationMachine{Factors: 2, Seed: 1, InitScale: 0.05},
		Codec:     comp,
		Optimizer: func(dim uint64) sketchml.Optimizer { return sketchml.NewAdam(0.05, dim) },
		Workers:   3,
		Epochs:    2,
		Lambda:    0.001,
		Seed:      1,
	}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelName != "FM-k2" {
		t.Errorf("ModelName = %q", res.ModelName)
	}
	if res.FinalAccuracy < 0.6 {
		t.Errorf("FM accuracy %.2f", res.FinalAccuracy)
	}
}

func TestErrorFeedbackFacade(t *testing.T) {
	full := sketchml.KDD10Like(6)
	train, test := full.Split(0.75, 1)
	res, err := sketchml.Train(sketchml.TrainConfig{
		Model: sketchml.LogisticRegression(),
		CodecFactory: func() sketchml.Codec {
			return sketchml.NewErrorFeedback(&sketchml.TopKCodec{Fraction: 0.2})
		},
		Workers: 3,
		Epochs:  2,
		Lambda:  0.01,
		Seed:    1,
	}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.CodecName != "TopK-0.2+EF" {
		t.Errorf("CodecName = %q", res.CodecName)
	}
	if res.FinalAccuracy < 0.6 {
		t.Errorf("accuracy %.2f", res.FinalAccuracy)
	}
}
