# Verification harness for the SketchML reproduction.
#
# `make verify` is the CI gate: build, formatting, go vet, the project's
# own static analyzers (cmd/sketchlint), unit tests, and the race
# detector. `make fuzz` adds a short native-fuzz smoke over the wire-format
# decoders. See DESIGN.md "Verification & static analysis".

GO       ?= go
FUZZTIME ?= 10s
# Flags for `make bench`; override with e.g. BENCHFLAGS=-benchtime=1x for a
# smoke run that only checks the pipeline still works.
BENCHFLAGS ?= -benchtime=0.5s

# Native fuzz targets, as "package:Target" pairs. Go's fuzzer runs one
# target per invocation, so the fuzz rule loops.
FUZZ_TARGETS := \
	./internal/codec:FuzzSketchMLDecode \
	./internal/keycoding:FuzzDeltaRoundTrip \
	./internal/keycoding:FuzzDecodeDeltaRobust

.PHONY: all build fmt vet lint test race fuzz bench verify clean

all: verify

build:
	$(GO) build ./...

# gofmt -l prints offending files; grep -c . turns "any output" into a
# failing exit status with the file list still visible.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/sketchlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "fuzzing $$target in $$pkg for $(FUZZTIME)"; \
		$(GO) test -run '^$$' -fuzz $$target -fuzztime $(FUZZTIME) $$pkg; \
	done

# bench runs the codec micro-benchmarks and rewrites the committed JSON
# baseline. The text output still streams to the terminal; benchjson parses
# the captured copy.
bench:
	@$(GO) test ./internal/codec -run '^$$' -bench BenchmarkEncodeDecode -benchmem -count=1 $(BENCHFLAGS) > bench.out || \
		{ cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_codec.json < bench.out
	@rm -f bench.out
	@echo "bench: wrote BENCH_codec.json"

verify: build fmt vet lint test race
	@echo "verify: all gates passed"

clean:
	$(GO) clean ./...
