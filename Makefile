# Verification harness for the SketchML reproduction.
#
# `make verify` is the pre-PR gate: build, formatting, go vet, the
# project's own static analyzers (cmd/sketchlint), unit tests, the
# race-matrix sweep, and a fuzz smoke over the wire-format decoders.
# `make fuzz` runs the fuzzers longer. See DESIGN.md "Verification &
# static analysis" and ROADMAP.md "Verification".

GO       ?= go
FUZZTIME ?= 10s
# fuzz-smoke keeps verify fast; the seed corpora under testdata/fuzz run
# unconditionally as part of `go test` either way.
SMOKE_FUZZTIME ?= 5s

# race-matrix sweeps scheduler pressure (GOMAXPROCS) against codec worker
# count (SKETCHML_PARALLELISM, consumed by codec.parallelism when
# Options.Parallelism is 0). The concurrency-heavy packages run under
# -race at every point; -count=1 defeats the test cache so each point
# really executes.
MATRIX_GOMAXPROCS   ?= 1 2 8
MATRIX_PARALLELISM  ?= 0 1 4
MATRIX_PKGS         ?= ./internal/codec ./internal/trainer ./internal/cluster ./internal/service
# Flags for `make bench`; override with e.g. BENCHFLAGS=-benchtime=1x for a
# smoke run that only checks the pipeline still works.
BENCHFLAGS ?= -benchtime=0.5s
# bench-check tolerance in percent, and extra benchjson flags. CI passes
# BENCH_COMPARE_FLAGS=-alloc-only because committed wall times mean
# nothing on another machine, while allocation counts are stable.
BENCH_TOLERANCE ?= 25
BENCH_COMPARE_FLAGS ?=
# Steady-state benchmark surface: the codec encode/decode sweep, the
# wire-to-wire merge path, and the cluster deadline-receive loop. All feed
# one benchjson document; the committed BENCH_ceilings.json pins absolute
# allocs/op ceilings for the machine-independent rows (0 for DecodeInto and
# the exact-path MergeInto, 2 for RecvTimeout), because a 0 -> 1 allocation
# regression is invisible to percentage thresholds.
BENCH_PKGS     ?= ./internal/codec ./internal/cluster
BENCH_PATTERN  ?= 'BenchmarkEncodeDecode|BenchmarkMerge|BenchmarkRecvTimeoutSteadyState'
BENCH_CEILINGS ?= BENCH_ceilings.json
# Fault seed for the race-matrix chaos point; the default chaos-soak run
# uses the test's built-in seed, so the matrix exercises a second schedule.
CHAOS_MATRIX_SEED ?= 7
# sketchlint inputs: the committed suppression baseline (accepted findings
# with documented reasons; stale entries fail the run), the summary cache
# that keeps warm runs fast, and the compiler-oracle cache that keeps the
# -gcflags builds from rerunning when nothing changed (both machine-local,
# gitignored, safe to delete).
LINT_BASELINE     ?= lint.baseline.json
LINT_CACHE        ?= .sketchlint-cache.json
LINT_ORACLE_CACHE ?= .sketchlint-oracle-cache.json

# Native fuzz targets, as "package:Target" pairs. Go's fuzzer runs one
# target per invocation, so the fuzz rule loops.
FUZZ_TARGETS := \
	./internal/codec:FuzzSketchMLDecode \
	./internal/codec:FuzzMerge \
	./internal/keycoding:FuzzDeltaRoundTrip \
	./internal/keycoding:FuzzDecodeDeltaRobust \
	./internal/trainer:FuzzCheckpointDecode \
	./internal/service:FuzzJobSpecDecode

.PHONY: all build fmt vet lint lint-stats lint-self test race race-matrix chaos-soak fuzz fuzz-smoke bench bench-check service-smoke verify clean

all: verify

build:
	$(GO) build ./...

# gofmt -l prints offending files; grep -c . turns "any output" into a
# failing exit status with the file list still visible.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/sketchlint -baseline $(LINT_BASELINE) -summary-cache $(LINT_CACHE) \
		-oracle -oracle-cache $(LINT_ORACLE_CACHE) ./...

# lint-stats is the same gate as `lint`, just louder: a per-analyzer table
# of finding counts and wall times, plus summary-build, cache hit/miss,
# and oracle (warm/cold, site counts, build time) lines, so analyzer cost
# regressions are visible in review.
lint-stats:
	$(GO) run ./cmd/sketchlint -baseline $(LINT_BASELINE) -summary-cache $(LINT_CACHE) \
		-oracle -oracle-cache $(LINT_ORACLE_CACHE) -stats ./...

# lint-self points the analyzers at their own implementation with no
# baseline at all: the linter's source must be clean under its own rules,
# or any inline suppression it needs must justify itself in-place.
lint-self:
	$(GO) run ./cmd/sketchlint ./internal/lint ./cmd/sketchlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-matrix:
	@set -e; for gmp in $(MATRIX_GOMAXPROCS); do \
		for par in $(MATRIX_PARALLELISM); do \
			echo "race-matrix: GOMAXPROCS=$$gmp SKETCHML_PARALLELISM=$$par"; \
			GOMAXPROCS=$$gmp SKETCHML_PARALLELISM=$$par \
				$(GO) test -race -count=1 $(MATRIX_PKGS); \
		done; \
	done
	@set -e; ncpu=$$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN); \
	if [ "$$ncpu" -ge 4 ]; then \
		for par in $(MATRIX_PARALLELISM); do \
			echo "race-matrix: GOMAXPROCS=$$ncpu (NumCPU) SKETCHML_PARALLELISM=$$par"; \
			GOMAXPROCS=$$ncpu SKETCHML_PARALLELISM=$$par \
				$(GO) test -race -count=1 $(MATRIX_PKGS); \
		done; \
	else \
		echo "race-matrix: NumCPU column skipped ($$ncpu CPUs; the fixed 1/2/8 sweep already covers it)"; \
	fi
	@echo "race-matrix: chaos point GOMAXPROCS=4 CHAOS_SEED=$(CHAOS_MATRIX_SEED)"
	GOMAXPROCS=4 SKETCHML_CHAOS_SOAK=1 SKETCHML_CHAOS_SEED=$(CHAOS_MATRIX_SEED) \
		$(GO) test -race -count=1 -run TestChaosSoak ./internal/trainer
	@echo "race-matrix: all points passed"

# chaos-soak trains under seeded fault injection (drops, corruption, dups,
# delays, one worker disconnect+rejoin) under -race and demands exact
# counter reproducibility plus convergence within tolerance of the clean
# run. The race-matrix chaos point above sweeps a second fault seed.
chaos-soak:
	SKETCHML_CHAOS_SOAK=1 $(GO) test -race -count=1 -run TestChaosSoak -v ./internal/trainer

fuzz-smoke:
	@$(MAKE) fuzz FUZZTIME=$(SMOKE_FUZZTIME)

fuzz:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; target=$${t##*:}; \
		echo "fuzzing $$target in $$pkg for $(FUZZTIME)"; \
		$(GO) test -run '^$$' -fuzz $$target -fuzztime $(FUZZTIME) $$pkg; \
	done

# bench runs the steady-state micro-benchmarks (codec encode/decode plus
# the cluster receive loop) and rewrites the committed JSON
# baseline. The text output still streams to the terminal; benchjson parses
# the captured copy.
bench:
	@$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem -count=1 $(BENCHFLAGS) > bench.out || \
		{ cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson -o BENCH_codec.json -ceilings $(BENCH_CEILINGS) < bench.out
	@rm -f bench.out
	@echo "bench: wrote BENCH_codec.json"

# bench-check is the regression gate: rerun the steady-state benchmarks
# and exit nonzero when a metric regresses more than BENCH_TOLERANCE
# percent against the committed BENCH_codec.json baseline (ns/op and B/op
# by default; allocs/op and B/op with BENCH_COMPARE_FLAGS=-alloc-only), or
# when any row exceeds its absolute allocs/op ceiling from
# BENCH_ceilings.json (the zero-allocation contract: DecodeInto rows stay
# at 0, the steady-state RecvTimeout row stays at or below 2).
bench-check:
	@$(GO) test $(BENCH_PKGS) -run '^$$' -bench $(BENCH_PATTERN) -benchmem -count=1 $(BENCHFLAGS) > bench.out || \
		{ cat bench.out; rm -f bench.out; exit 1; }
	@$(GO) run ./cmd/benchjson -compare BENCH_codec.json -threshold $(BENCH_TOLERANCE) -ceilings $(BENCH_CEILINGS) $(BENCH_COMPARE_FLAGS) < bench.out; \
		rc=$$?; rm -f bench.out; exit $$rc

# service-smoke is the end-to-end control-plane gate: build the real
# binary, start it in -serve mode, submit a job over HTTP and poll it to
# completion, then SIGTERM the process mid-run on a second job and demand a
# clean drain — checkpoint on disk, exit code 0. The test itself lives in
# cmd/sketchml/serve_smoke_test.go, gated behind the env var so plain
# `go test ./...` stays fast.
service-smoke:
	SKETCHML_SERVICE_SMOKE=1 $(GO) test -count=1 -run TestServiceSmoke -v ./cmd/sketchml

verify: build fmt vet lint lint-self test race-matrix chaos-soak fuzz-smoke service-smoke
	@echo "verify: all gates passed"

clean:
	$(GO) clean ./...
