package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: sketchml/internal/codec
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeDecode/Encode/q256_r8_nnz5000_par1-8   	     100	   1037263 ns/op	      15171 compressed-B/msg	  431960 B/op	     128 allocs/op
BenchmarkEncodeDecode/Decode/q256_r8_nnz5000_par1-8   	     500	    249339 ns/op	      15171 compressed-B/msg	  171344 B/op	      32 allocs/op
PASS
ok  	sketchml/internal/codec	0.090s
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "sketchml/internal/codec" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(rep.Results))
	}
	e := rep.Results[0]
	if e.Name != "BenchmarkEncodeDecode/Encode/q256_r8_nnz5000_par1-8" {
		t.Errorf("name: %q", e.Name)
	}
	if e.Iterations != 100 || e.NsPerOp != 1037263 || e.BytesPerOp != 431960 || e.AllocsPerOp != 128 {
		t.Errorf("fields: %+v", e)
	}
	if got := e.Metrics["compressed-B/msg"]; got != 15171 {
		t.Errorf("custom metric: %v", got)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                  // no iterations
		"BenchmarkX notanumber",       // bad iterations
		"BenchmarkX 10 42",            // dangling value without unit
		"BenchmarkX 10 nan-ish ns/op", // bad value
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine(%q): want error, got nil", line)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("want 0 results, got %d", len(rep.Results))
	}
}
