package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sketchml/internal/obs"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: sketchml/internal/codec
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeDecode/Encode/q256_r8_nnz5000_par1-8   	     100	   1037263 ns/op	      15171 compressed-B/msg	  431960 B/op	     128 allocs/op
BenchmarkEncodeDecode/Decode/q256_r8_nnz5000_par1-8   	     500	    249339 ns/op	      15171 compressed-B/msg	  171344 B/op	      32 allocs/op
PASS
ok  	sketchml/internal/codec	0.090s
`
	rep, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "sketchml/internal/codec" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(rep.Results))
	}
	e := rep.Results[0]
	if e.Name != "BenchmarkEncodeDecode/Encode/q256_r8_nnz5000_par1-8" {
		t.Errorf("name: %q", e.Name)
	}
	if e.Iterations != 100 || e.NsPerOp != 1037263 || e.BytesPerOp != 431960 || e.AllocsPerOp != 128 {
		t.Errorf("fields: %+v", e)
	}
	if got := e.Metrics["compressed-B/msg"]; got != 15171 {
		t.Errorf("custom metric: %v", got)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                  // no iterations
		"BenchmarkX notanumber",       // bad iterations
		"BenchmarkX 10 42",            // dangling value without unit
		"BenchmarkX 10 nan-ish ns/op", // bad value
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine(%q): want error, got nil", line)
		}
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{Results: []Entry{
		{Name: "BenchmarkA/fast", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkA/slow", NsPerOp: 200, BytesPerOp: 2000, AllocsPerOp: 20},
		{Name: "BenchmarkOnlyInBase", NsPerOp: 50},
	}}

	t.Run("within threshold passes", func(t *testing.T) {
		cur := &Report{Results: []Entry{
			{Name: "BenchmarkA/fast", NsPerOp: 110, BytesPerOp: 1100, AllocsPerOp: 11}, // +10%
			{Name: "BenchmarkA/slow", NsPerOp: 150, BytesPerOp: 1500, AllocsPerOp: 15}, // improvement
		}}
		regs, matched, err := compareReports(base, cur, 25, false)
		if err != nil {
			t.Fatal(err)
		}
		if matched != 2 || len(regs) != 0 {
			t.Fatalf("matched=%d regs=%v, want 2 matches and no regressions", matched, regs)
		}
	})

	t.Run("regression detected per metric", func(t *testing.T) {
		cur := &Report{Results: []Entry{
			{Name: "BenchmarkA/fast", NsPerOp: 200, BytesPerOp: 1000, AllocsPerOp: 10}, // ns/op +100%
			{Name: "BenchmarkA/slow", NsPerOp: 200, BytesPerOp: 3000, AllocsPerOp: 20}, // B/op +50%
		}}
		regs, _, err := compareReports(base, cur, 25, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 2 {
			t.Fatalf("regressions %v, want exactly 2", regs)
		}
		if !strings.Contains(regs[0], "BenchmarkA/fast: ns/op") ||
			!strings.Contains(regs[1], "BenchmarkA/slow: B/op") {
			t.Errorf("unexpected regression lines: %v", regs)
		}
	})

	t.Run("alloc-only ignores ns/op and checks allocs/op", func(t *testing.T) {
		cur := &Report{Results: []Entry{
			{Name: "BenchmarkA/fast", NsPerOp: 10000, BytesPerOp: 1000, AllocsPerOp: 20}, // allocs +100%
		}}
		regs, _, err := compareReports(base, cur, 25, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Fatalf("regressions %v, want exactly one allocs/op line", regs)
		}
	})

	t.Run("procs suffix normalized", func(t *testing.T) {
		cur := &Report{Results: []Entry{
			{Name: "BenchmarkA/fast-8", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		}}
		_, matched, err := compareReports(base, cur, 25, false)
		if err != nil {
			t.Fatal(err)
		}
		if matched != 1 {
			t.Fatalf("matched=%d, want the -8 suffix to be ignored", matched)
		}
	})

	t.Run("unmatched skipped but zero matches errors", func(t *testing.T) {
		cur := &Report{Results: []Entry{
			{Name: "BenchmarkRenamedEverything", NsPerOp: 1},
		}}
		if _, _, err := compareReports(base, cur, 25, false); err == nil {
			t.Fatal("want error when no names match the baseline")
		}
	})

	t.Run("metric absent from baseline skipped", func(t *testing.T) {
		zb := &Report{Results: []Entry{{Name: "BenchmarkZ", NsPerOp: 100}}} // no B/op recorded
		cur := &Report{Results: []Entry{{Name: "BenchmarkZ", NsPerOp: 100, BytesPerOp: 99999}}}
		regs, matched, err := compareReports(zb, cur, 25, false)
		if err != nil {
			t.Fatal(err)
		}
		if matched != 1 || len(regs) != 0 {
			t.Fatalf("matched=%d regs=%v, want B/op check skipped when baseline has none", matched, regs)
		}
	})
}

// TestCheckCeilings pins the absolute allocs/op gate: rows at or under
// their ceiling pass (zero ceilings included — the whole point is pinning
// 0-alloc rows), rows above fail, ceilings naming no fresh row are a hard
// error rather than silently passing, and the GOMAXPROCS suffix is
// normalized on both sides.
func TestCheckCeilings(t *testing.T) {
	writeCeilings := func(t *testing.T, body string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "ceilings.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cur := &Report{Results: []Entry{
		{Name: "BenchmarkZeroAlloc-8", AllocsPerOp: 0},
		{Name: "BenchmarkBounded", AllocsPerOp: 2},
		{Name: "BenchmarkHot", AllocsPerOp: 5},
	}}

	t.Run("within ceilings passes", func(t *testing.T) {
		path := writeCeilings(t, `{"allocs_per_op": {"BenchmarkZeroAlloc": 0, "BenchmarkBounded-16": 2}}`)
		violations, checked, err := checkCeilings(path, cur)
		if err != nil {
			t.Fatal(err)
		}
		if checked != 2 || len(violations) != 0 {
			t.Fatalf("checked=%d violations=%v, want 2 checked and none", checked, violations)
		}
	})

	t.Run("zero-alloc regression caught", func(t *testing.T) {
		path := writeCeilings(t, `{"allocs_per_op": {"BenchmarkHot": 0}}`)
		violations, _, err := checkCeilings(path, cur)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 1 || !strings.Contains(violations[0], "BenchmarkHot") {
			t.Fatalf("violations %v, want exactly one naming BenchmarkHot", violations)
		}
	})

	t.Run("stale ceiling is an error", func(t *testing.T) {
		path := writeCeilings(t, `{"allocs_per_op": {"BenchmarkRenamedAway": 0}}`)
		if _, _, err := checkCeilings(path, cur); err == nil ||
			!strings.Contains(err.Error(), "stale ceiling") {
			t.Fatalf("want stale-ceiling error, got %v", err)
		}
	})

	t.Run("empty gate is an error", func(t *testing.T) {
		path := writeCeilings(t, `{"allocs_per_op": {}}`)
		if _, _, err := checkCeilings(path, cur); err == nil {
			t.Fatal("want error for a ceilings file that gates nothing")
		}
	})
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":                  "BenchmarkX",
		"BenchmarkX-16":                 "BenchmarkX",
		"BenchmarkX":                    "BenchmarkX",
		"BenchmarkX/q256_r8_nnz_par1":   "BenchmarkX/q256_r8_nnz_par1", // par1 is not a procs suffix
		"BenchmarkX/sub-case":           "BenchmarkX/sub-case",
		"BenchmarkEncode/nnz500_par1-4": "BenchmarkEncode/nnz500_par1",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMergedRunReportRoundTrip pins the -merge-report document shape: a
// benchmark report with an embedded training run report must survive a
// JSON round trip with the run report's accounting intact, and stay
// readable by plain benchjson consumers when the field is absent.
func TestMergedRunReportRoundTrip(t *testing.T) {
	rr := &obs.RunReport{
		Tool: "sketchml", Codec: "sketchml", Model: "LR",
		Workers: 3, Compression: 4.5, TotalUpBytes: 1000, TotalRawUpBytes: 4500,
	}
	doc := &Report{
		Results:   []Entry{{Name: "BenchmarkA", Iterations: 1, NsPerOp: 42}},
		RunReport: rr,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.RunReport == nil || back.RunReport.Compression != 4.5 || back.RunReport.Workers != 3 {
		t.Fatalf("embedded run report lost in round trip: %+v", back.RunReport)
	}

	// Without a merge the field must vanish entirely, not appear as null.
	doc.RunReport = nil
	data, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "run_report") {
		t.Errorf("run_report key serialized for a plain report: %s", data)
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("want 0 results, got %d", len(rep.Results))
	}
}
