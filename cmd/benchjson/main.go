// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed
// (BENCH_codec.json) instead of eyeballed from logs.
//
// Usage:
//
//	go test ./internal/codec -bench . -benchmem | benchjson -o BENCH_codec.json
//	go test ./internal/codec -bench . -benchmem | benchjson -compare BENCH_codec.json
//	benchjson -o combined.json -merge-report report.json < bench.out
//
// It parses the standard benchmark line format
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   3 allocs/op   1.5 custom-unit
//
// keeping ns/op, B/op, allocs/op as first-class fields and any extra
// ReportMetric pairs in a metrics map. Context lines (goos/goarch/pkg/cpu)
// are captured into the header.
//
// -compare turns benchjson into a regression gate: the fresh results on
// stdin are checked against a committed baseline and the exit status is
// nonzero when ns/op or B/op regresses more than -threshold percent
// (default 25). -alloc-only restricts the check to B/op and allocs/op for
// cross-machine CI, where wall timing against a committed baseline is
// meaningless but allocation counts are stable.
//
// -ceilings FILE adds an absolute allocs/op gate: the file commits a hard
// ceiling per benchmark name, and any fresh row above its ceiling fails the
// run regardless of what the relative baseline says. Relative comparison
// catches drift; ceilings pin the zero-allocation steady-state contract
// (0 allocs/op rows stay 0 — a 0→1 regression is invisible to percentage
// thresholds, whose baseline denominator is zero). A ceiling naming no
// fresh row is an error, so stale entries cannot rot in the file.
//
// -merge-report embeds a training run report (written by `sketchml
// -metrics-out`) into the output document, pairing a run's compression and
// stage accounting with the micro-benchmark numbers of the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"sketchml/internal/obs"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS    string  `json:"goos,omitempty"`
	GOARCH  string  `json:"goarch,omitempty"`
	Pkg     string  `json:"pkg,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Results []Entry `json:"results"`
	// RunReport is an optional embedded training run report (-merge-report),
	// tying a run's wire/stage accounting to the same commit's benchmarks.
	RunReport *obs.RunReport `json:"run_report,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to compare against; exit nonzero on regression")
	threshold := flag.Float64("threshold", 25, "regression threshold in percent for -compare")
	allocOnly := flag.Bool("alloc-only", false, "with -compare, check only B/op and allocs/op (cross-machine CI: committed ns/op is not comparable)")
	ceilings := flag.String("ceilings", "", "JSON file of absolute allocs/op ceilings per benchmark; exit nonzero when exceeded or stale")
	mergeReport := flag.String("merge-report", "", "embed this training run report (from `sketchml -metrics-out`) in the output")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	if *mergeReport != "" {
		rr, err := obs.ReadReportFile(*mergeReport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.RunReport = rr
	}

	if *ceilings != "" {
		violations, checked, err := checkCeilings(*ceilings, rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: CEILING:", v)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d allocs/op ceiling violation(s) across %d gated benchmark(s)\n",
				len(violations), checked)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmark(s) within the allocs/op ceilings of %s\n", checked, *ceilings)
		if *compare == "" && *out == "" {
			return // gate mode: no JSON dump unless explicitly requested
		}
	}

	if *compare != "" {
		base, err := readBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regs, matched, err := compareReports(base, rep, *threshold, *allocOnly)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% across %d compared benchmark(s)\n",
				len(regs), *threshold, matched)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmark(s) within %.0f%% of %s\n", matched, *threshold, *compare)
		if *out == "" {
			return // gate mode: no JSON dump unless explicitly requested
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// ceilingFile is the committed absolute-gate document: benchmark name
// (GOMAXPROCS suffix ignored, like baseline matching) to the maximum
// allocs/op that row may report.
type ceilingFile struct {
	// AllocsPerOp maps a benchmark name to its hard allocs/op ceiling.
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// checkCeilings enforces the absolute allocs/op ceilings in path against
// the fresh results. Unlike the relative gate, matching is strict both
// ways: a gated row above its ceiling is a violation, and a ceiling that
// matches no fresh row is an error (a renamed benchmark must move its
// ceiling, not orphan it — the same hygiene rule the lint baseline uses).
func checkCeilings(path string, cur *Report) (violations []string, checked int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var cf ceilingFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, 0, fmt.Errorf("parse ceilings %s: %w", path, err)
	}
	if len(cf.AllocsPerOp) == 0 {
		return nil, 0, fmt.Errorf("ceilings %s gates nothing (empty allocs_per_op)", path)
	}
	results := make(map[string]Entry, len(cur.Results))
	for _, e := range cur.Results {
		results[trimProcs(e.Name)] = e
	}
	for name, max := range cf.AllocsPerOp {
		e, ok := results[trimProcs(name)]
		if !ok {
			return nil, 0, fmt.Errorf("stale ceiling: %q matches no benchmark in the input; remove or rename it", name)
		}
		checked++
		if e.AllocsPerOp > max {
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.6g exceeds ceiling %.6g",
				e.Name, e.AllocsPerOp, max))
		}
	}
	sort.Strings(violations)
	return violations, checked, nil
}

// readBaseline loads a committed benchmark baseline document.
func readBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse baseline %s: %w", path, err)
	}
	return &rep, nil
}

// trimProcs strips the "-N" GOMAXPROCS suffix the testing package appends
// to benchmark names on multi-proc runs, so a baseline recorded on one
// machine still matches output from another. Names whose final hyphen
// segment is not all digits (e.g. ".../par1") pass through untouched.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareReports checks cur against base benchmark-by-benchmark (matched by
// full name, GOMAXPROCS suffix ignored) and describes every metric that
// regressed by more than thresholdPct percent. Benchmarks present on only
// one side are skipped — renames must not hard-fail the gate — but zero
// matches is an error so a renamed-everything baseline cannot silently
// pass. Improvements and within-threshold noise pass. allocOnly swaps the
// ns/op check for allocs/op and keeps B/op, the machine-independent pair.
func compareReports(base, cur *Report, thresholdPct float64, allocOnly bool) (regressions []string, matched int, err error) {
	baseline := make(map[string]Entry, len(base.Results))
	for _, e := range base.Results {
		baseline[trimProcs(e.Name)] = e
	}
	for _, e := range cur.Results {
		b, ok := baseline[trimProcs(e.Name)]
		if !ok {
			continue
		}
		matched++
		check := func(metric string, old, now float64) {
			if old <= 0 {
				return // metric absent from the baseline entry
			}
			pct := (now - old) / old * 100
			if pct > thresholdPct {
				regressions = append(regressions, fmt.Sprintf("%s: %s %.6g -> %.6g (+%.1f%%)",
					e.Name, metric, old, now, pct))
			}
		}
		if allocOnly {
			check("allocs/op", b.AllocsPerOp, e.AllocsPerOp)
		} else {
			check("ns/op", b.NsPerOp, e.NsPerOp)
		}
		check("B/op", b.BytesPerOp, e.BytesPerOp)
	}
	if matched == 0 {
		return nil, 0, fmt.Errorf("no benchmark names in common with the baseline (%d baseline, %d current)",
			len(base.Results), len(cur.Results))
	}
	sort.Strings(regressions)
	return regressions, matched, nil
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package bench runs emit one pkg header per package;
			// record them all, comma-joined, rather than keeping the last.
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if rep.Pkg != "" {
				pkg = rep.Pkg + ", " + pkg
			}
			rep.Pkg = pkg
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			rep.Results = append(rep.Results, e)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one benchmark result line: a name, an iteration count,
// then (value, unit) pairs.
func parseLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("want at least name and iterations, have %d fields", len(fields))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("iterations: %w", err)
	}
	e := Entry{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Entry{}, fmt.Errorf("odd number of value/unit fields: %d", len(rest))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("value %q: %w", rest[i], err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, nil
}
