// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark baselines can be committed and diffed
// (BENCH_codec.json) instead of eyeballed from logs.
//
// Usage:
//
//	go test ./internal/codec -bench . -benchmem | benchjson -o BENCH_codec.json
//
// It parses the standard benchmark line format
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   3 allocs/op   1.5 custom-unit
//
// keeping ns/op, B/op, allocs/op as first-class fields and any extra
// ReportMetric pairs in a metrics map. Context lines (goos/goarch/pkg/cpu)
// are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GOOS    string  `json:"goos,omitempty"`
	GOARCH  string  `json:"goarch,omitempty"`
	Pkg     string  `json:"pkg,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Results []Entry `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			rep.Results = append(rep.Results, e)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one benchmark result line: a name, an iteration count,
// then (value, unit) pairs.
func parseLine(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("want at least name and iterations, have %d fields", len(fields))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("iterations: %w", err)
	}
	e := Entry{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Entry{}, fmt.Errorf("odd number of value/unit fields: %d", len(rest))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("value %q: %w", rest[i], err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, nil
}
