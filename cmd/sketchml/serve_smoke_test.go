package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceSmoke is the end-to-end service gate (`make service-smoke`):
// it builds the real binary, starts it in -serve mode, submits a job over
// HTTP and polls it to completion, then submits a second long job and
// SIGTERMs the process mid-run — the drain must checkpoint that job to the
// configured directory and the process must exit cleanly (code 0). Gated
// behind SKETCHML_SERVICE_SMOKE=1 because it builds and execs a binary.
func TestServiceSmoke(t *testing.T) {
	if os.Getenv("SKETCHML_SERVICE_SMOKE") != "1" {
		t.Skip("set SKETCHML_SERVICE_SMOKE=1 (or run `make service-smoke`) to run the end-to-end service smoke")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sketchml")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build: %v", err)
	}

	ckptDir := filepath.Join(dir, "ckpt")
	cmd := exec.Command(bin,
		"-serve", "127.0.0.1:0",
		"-checkpoint-dir", ckptDir,
		"-drain-timeout", "60s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The server prints its bound address; everything after streams to the
	// test log so a hung smoke is diagnosable.
	sc := bufio.NewScanner(stdout)
	addrRe := regexp.MustCompile(`http://(127\.0\.0\.1:\d+)`)
	var base string
	lines := make(chan string, 64)
	for sc.Scan() {
		line := sc.Text()
		t.Logf("server: %s", line)
		if m := addrRe.FindStringSubmatch(line); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("server never printed its address (scan err: %v)", sc.Err())
	}
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	type status struct {
		ID      string  `json:"id"`
		State   string  `json:"state"`
		Detail  string  `json:"detail"`
		Drained bool    `json:"drained"`
		Rounds  int     `json:"completed_rounds"`
		Loss    float64 `json:"final_loss"`
	}
	post := func(body string) (status, int) {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st status
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return st, resp.StatusCode
	}
	get := func(id string) status {
		t.Helper()
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	wait := func(id string, pred func(status) bool, what string) status {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		var st status
		for time.Now().Before(deadline) {
			st = get(id)
			if pred(st) {
				return st
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("job %s never reached %s; last %+v", id, what, st)
		return st
	}

	// Readiness before any job.
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Job 1: quick, runs to completion.
	quick := `{"name":"smoke-quick","dataset":"synthetic","instances":300,"dim":600,"avg_nnz":8,
		"model":"LR","codec":"adam","workers":2,"epochs":2,"seed":3}`
	st1, code := post(quick)
	if code != http.StatusAccepted {
		t.Fatalf("submit quick: %d", code)
	}
	done := wait(st1.ID, func(s status) bool {
		return s.State == "done" || s.State == "failed" || s.State == "cancelled"
	}, "a terminal state")
	if done.State != "done" {
		t.Fatalf("quick job finished %s (%s)", done.State, done.Detail)
	}

	// Job 2: long; SIGTERM lands mid-run and must drain it.
	long := `{"name":"smoke-drain","dataset":"synthetic","instances":2000,"dim":4000,"avg_nnz":20,
		"model":"LR","codec":"sketchml","workers":2,"epochs":50,"seed":3}`
	st2, code := post(long)
	if code != http.StatusAccepted {
		t.Fatalf("submit long: %d", code)
	}
	wait(st2.ID, func(s status) bool { return s.State == "running" }, "running")

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain stdout to EOF before Wait — Wait closes the pipe, so calling it
	// concurrently would race the scanner out of the final lines. The
	// watchdog kills a hung server, which closes its stdout and unblocks
	// the loop; Wait then reports the kill.
	watchdog := time.AfterFunc(120*time.Second, func() { _ = cmd.Process.Kill() })
	var tail []string
	for line := range lines {
		t.Logf("server: %s", line)
		tail = append(tail, line)
	}
	watchdog.Stop()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
	}
	if !strings.Contains(strings.Join(tail, "\n"), "drained cleanly") {
		t.Fatalf("server output missing the clean-drain line:\n%s", strings.Join(tail, "\n"))
	}

	// The drained job's checkpoint survived to disk, crash-safe.
	ckpt := filepath.Join(ckptDir, "smoke-drain.ckpt")
	fi, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("drained job left no checkpoint: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("checkpoint file is empty")
	}
	// And no temp files were left behind by the atomic writer.
	entries, err := os.ReadDir(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Fatalf("atomic writer leaked temp file %s", e.Name())
		}
	}
	fmt.Println("service smoke: submit/poll/drain/exit all clean")
}
