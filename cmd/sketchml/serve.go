package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sketchml/internal/obs"
	"sketchml/internal/service"
)

// serveOptions carries the -serve flag family (see registerServeFlags).
type serveOptions struct {
	addr          string
	checkpointDir string
	maxWorkers    int
	maxEpochs     int
	maxQueue      int
	maxConcurrent int
	maxWallClock  time.Duration
	retryBudget   int
	drainTimeout  time.Duration
}

func (o *serveOptions) limits() service.Limits {
	return service.Limits{
		MaxWorkers:    o.maxWorkers,
		MaxEpochs:     o.maxEpochs,
		MaxQueue:      o.maxQueue,
		MaxConcurrent: o.maxConcurrent,
		MaxWallClock:  o.maxWallClock,
		RetryBudget:   o.retryBudget,
	}
}

// runServe hosts the training control plane until SIGTERM/SIGINT, then
// drains: readiness flips, running jobs finish their round in flight and
// checkpoint, and the process exits cleanly. The HTTP listener keeps
// serving during the drain so probes and job status stay observable.
func runServe(o serveOptions) error {
	reg := obs.NewRegistry()
	store, err := service.NewCheckpointStore(o.checkpointDir, reg)
	if err != nil {
		return err
	}
	srv := service.NewServer(o.limits(), store, reg)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("serve listen: %w", err)
	}
	httpSrv := &http.Server{Handler: service.Handler(srv)}
	fmt.Printf("serving control plane on http://%s (checkpoints: %s)\n",
		ln.Addr(), orMemory(o.checkpointDir))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second SIGTERM kills hard

	fmt.Printf("draining (budget %s): waiting for running jobs to checkpoint\n", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	srv.Drain(drainCtx)
	cancel()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve shutdown: %w", err)
	}
	fmt.Println("drained cleanly")
	return nil
}

func orMemory(dir string) string {
	if dir == "" {
		return "in-memory"
	}
	return dir
}
