// Command sketchml trains a model with distributed SGD while compressing
// gradient traffic with a selectable codec, and reports per-epoch loss,
// traffic, and timing.
//
// Usage:
//
//	sketchml -data kdd12 -model LR -codec sketchml -workers 10 -epochs 5
//	sketchml -data path/to/file.libsvm -model SVM -codec zipml16
//	sketchml -data kdd10 -codec adam -tcp            # real loopback TCP
//	sketchml -serve 127.0.0.1:8080                   # training service mode
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (served only with -pprof)
	"os"
	"time"

	"sketchml"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/stats"
)

func main() {
	var (
		data       = flag.String("data", "kdd10", "dataset: kdd10|kdd12|ctr or a LibSVM file path")
		modelN     = flag.String("model", "LR", "model: LR|SVM|Linear")
		codecN     = flag.String("codec", "sketchml", "codec: sketchml|adam|adam32|zipml8|zipml16|key|keyquan|onebit|topk|topk-ef")
		workers    = flag.Int("workers", 4, "number of workers")
		epochs     = flag.Int("epochs", 3, "training epochs")
		batch      = flag.Float64("batch", 0.1, "mini-batch fraction of the training set")
		lr         = flag.Float64("lr", 0.1, "Adam learning rate")
		lambda     = flag.Float64("lambda", 0.01, "L2 regularization")
		seed       = flag.Int64("seed", 1, "random seed")
		useTCP     = flag.Bool("tcp", false, "exchange gradients over loopback TCP")
		buckets    = flag.Int("buckets", 256, "SketchML quantile buckets (q)")
		rows       = flag.Int("rows", 2, "MinMaxSketch rows (s)")
		groups     = flag.Int("groups", 8, "MinMaxSketch groups (r)")
		colsFrac   = flag.Float64("cols", 0.2, "MinMaxSketch columns as a fraction of nnz (t/d)")
		topology   = flag.String("topology", "driver", "aggregation topology: driver|ps|ssp")
		gatherN    = flag.String("gather", "star", "driver gather shape: star|tree|ring (tree/ring merge sketches wire-to-wire; mergeable codec only)")
		servers    = flag.Int("servers", 4, "parameter servers (topology=ps)")
		staleness  = flag.Int("staleness", 2, "staleness bound (topology=ssp)")
		straggler  = flag.Float64("straggler", 1, "slowdown factor of the last worker (topology=ssp)")
		metricsOut = flag.String("metrics-out", "", "write a validated JSON run report (per-epoch wire bytes, compression ratio, stage times, sketch error, full metrics snapshot) to this path; topology=driver only")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for the duration of the run")
	)
	var so serveOptions
	flag.StringVar(&so.addr, "serve", "", "run as a long-lived training service on this address (e.g. 127.0.0.1:8080); training flags are ignored, jobs arrive via the HTTP control API")
	flag.StringVar(&so.checkpointDir, "checkpoint-dir", "", "serve mode: persist job checkpoints to this directory (crash-safe; empty = in-memory only)")
	flag.IntVar(&so.maxWorkers, "serve-max-workers", 0, "serve mode: per-job worker budget (0 = default)")
	flag.IntVar(&so.maxEpochs, "serve-max-epochs", 0, "serve mode: per-job epoch budget (0 = default)")
	flag.IntVar(&so.maxQueue, "serve-max-queue", 0, "serve mode: pending-job queue bound (0 = default)")
	flag.IntVar(&so.maxConcurrent, "serve-max-concurrent", 0, "serve mode: jobs running at once (0 = default)")
	flag.DurationVar(&so.maxWallClock, "serve-max-wallclock", 0, "serve mode: per-job wall-clock budget cap (0 = default)")
	flag.IntVar(&so.retryBudget, "serve-retry-budget", -1, "serve mode: supervisor restarts per failed job (-1 = default)")
	flag.DurationVar(&so.drainTimeout, "drain-timeout", 30*time.Second, "serve mode: how long a SIGTERM drain waits for running jobs to checkpoint before hard-cancelling")
	flag.Parse()
	gather, err := sketchml.ParseTopology(*gatherN)
	if err != nil {
		fatal(err)
	}
	if err := validateFlags(so.addr, *metricsOut, *topology, gather, *useTCP); err != nil {
		fatal(err)
	}
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}
	if so.addr != "" {
		if err := runServe(so); err != nil {
			fatal(err)
		}
		return
	}

	ds, err := loadDataset(*data, *seed)
	if err != nil {
		fatal(err)
	}
	mdl, err := sketchml.ModelByName(*modelN)
	if err != nil {
		fatal(err)
	}
	// One registry spans trainer, codec, and cluster so the run report's
	// cross-layer consistency checks (wire bytes vs. transport counters)
	// have one coherent view. nil when no report is requested — the
	// instrumented layers then cost a pointer compare each.
	var reg *sketchml.Metrics
	if *metricsOut != "" {
		reg = sketchml.NewMetrics()
	}
	c, err := buildCodec(*codecN, *buckets, *rows, *groups, *colsFrac, reg)
	if err != nil {
		fatal(err)
	}

	train, test := ds.Split(0.75, *seed)
	fmt.Printf("dataset: %s (%d train / %d test, D=%d, avg nnz %.1f)\n",
		*data, train.N(), test.N(), ds.Dim, ds.AvgNNZ())
	fmt.Printf("model %s, codec %s, %d workers, batch %.0f%%\n\n",
		mdl.Name(), c.Name(), *workers, *batch*100)

	cfg := sketchml.TrainConfig{
		Model:         mdl,
		Codec:         c,
		Optimizer:     func(dim uint64) sketchml.Optimizer { return sketchml.NewAdam(*lr, dim) },
		Workers:       *workers,
		BatchFraction: *batch,
		Epochs:        *epochs,
		Lambda:        *lambda,
		Seed:          *seed,
		UseTCP:        *useTCP,
		Topology:      gather,
		Metrics:       reg,
	}
	var res *sketchml.TrainResult
	switch *topology {
	case "driver":
		res, err = sketchml.Train(cfg, train, test)
	case "ps":
		res, err = sketchml.TrainPS(cfg, *servers, train, test)
	case "ssp":
		speeds := make([]float64, *workers)
		for w := range speeds {
			speeds[w] = 1
		}
		if *workers > 0 {
			speeds[*workers-1] = *straggler
		}
		res, err = sketchml.TrainSSP(cfg, *staleness, speeds, train, test)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}
	if err != nil {
		fatal(err)
	}

	table := stats.NewTable("epoch", "test loss", "accuracy", "msg KB/round", "sim s", "wall s")
	for _, e := range res.Epochs {
		table.AddRow(e.Epoch, e.TestLoss, e.Accuracy,
			float64(e.UpBytes)/float64(e.Rounds)/1024,
			e.SimTime.Seconds(), e.WallTime.Seconds())
	}
	fmt.Println(table.String())
	fmt.Printf("final: loss %.4f, accuracy %.3f, avg %.1f KB/round upstream\n",
		res.FinalLoss, res.FinalAccuracy, res.AvgUpBytesPerRound()/1024)

	if *metricsOut != "" {
		rpt, err := sketchml.BuildRunReport("sketchml", res, reg)
		if err != nil {
			fatal(fmt.Errorf("run report inconsistent: %w", err))
		}
		if err := rpt.WriteFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("report: %s (compression %.1fx, %d up bytes",
			*metricsOut, rpt.Compression, rpt.TotalUpBytes)
		if rpt.SketchError != nil {
			fmt.Printf(", mean abs err %.3g, %d sign flips", rpt.SketchError.MeanAbsErr, rpt.SketchError.SignFlips)
		}
		fmt.Println(")")
	}
}

// validateFlags cross-checks flag combinations that cannot be rejected by
// any single flag's parser. It runs before any work starts so a bad
// combination is a fast, explicit startup error rather than a surprise
// after minutes of training.
func validateFlags(serveAddr, metricsOut, topology string, gather sketchml.Topology, useTCP bool) error {
	if serveAddr != "" {
		if metricsOut != "" {
			return fmt.Errorf("-metrics-out cannot be combined with -serve; fetch per-job metrics via GET /jobs/{id}?metrics=1")
		}
		return nil
	}
	if metricsOut != "" && topology != "driver" {
		return fmt.Errorf("-metrics-out requires -topology driver (got %q)", topology)
	}
	if gather != sketchml.TopologyStar {
		if topology != "driver" {
			return fmt.Errorf("-gather %s requires -topology driver (got %q)", gather, topology)
		}
		if useTCP {
			return fmt.Errorf("-gather %s requires the in-memory transport (drop -tcp)", gather)
		}
	}
	return nil
}

// startPprof serves net/http/pprof for the process lifetime. The listener
// is bound synchronously so a bad address fails fast; the serve loop runs
// until exit (done is closed only if the server stops early).
func startPprof(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("pprof listen: %w", err))
	}
	fmt.Printf("pprof: http://%s/debug/pprof/\n", ln.Addr())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "sketchml: pprof server: %v\n", err)
		}
	}()
}

func loadDataset(name string, seed int64) (*sketchml.Dataset, error) {
	switch name {
	case "kdd10":
		return sketchml.KDD10Like(seed), nil
	case "kdd12":
		return sketchml.KDD12Like(seed), nil
	case "ctr":
		return sketchml.CTRLike(seed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("open dataset: %w", err)
	}
	defer f.Close()
	return dataset.ParseLibSVM(f, 0)
}

func buildCodec(name string, buckets, rows, groups int, colsFrac float64, reg *sketchml.Metrics) (sketchml.Codec, error) {
	opts := codec.DefaultOptions()
	opts.Buckets = buckets
	opts.Rows = rows
	opts.Groups = groups
	opts.ColsFraction = colsFrac
	opts.Metrics = reg
	switch name {
	case "sketchml":
		return codec.NewSketchML(opts)
	case "adam":
		return &codec.Raw{}, nil
	case "adam32":
		return &codec.Raw{Float32: true}, nil
	case "zipml8":
		return &codec.ZipML{Bits: 8}, nil
	case "zipml16":
		return &codec.ZipML{Bits: 16}, nil
	case "key":
		opts.Quantize, opts.MinMax = false, false
		return codec.NewSketchML(opts)
	case "keyquan":
		opts.MinMax = false
		return codec.NewSketchML(opts)
	case "onebit":
		return &codec.OneBit{}, nil
	case "topk":
		return &codec.TopK{Fraction: 0.1}, nil
	case "topk-ef":
		return codec.NewErrorFeedback(&codec.TopK{Fraction: 0.1}), nil
	}
	return nil, fmt.Errorf("unknown codec %q", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sketchml: %v\n", err)
	os.Exit(1)
}
