// Command sketchml trains a model with distributed SGD while compressing
// gradient traffic with a selectable codec, and reports per-epoch loss,
// traffic, and timing.
//
// Usage:
//
//	sketchml -data kdd12 -model LR -codec sketchml -workers 10 -epochs 5
//	sketchml -data path/to/file.libsvm -model SVM -codec zipml16
//	sketchml -data kdd10 -codec adam -tcp            # real loopback TCP
package main

import (
	"flag"
	"fmt"
	"os"

	"sketchml"
	"sketchml/internal/codec"
	"sketchml/internal/dataset"
	"sketchml/internal/stats"
)

func main() {
	var (
		data      = flag.String("data", "kdd10", "dataset: kdd10|kdd12|ctr or a LibSVM file path")
		modelN    = flag.String("model", "LR", "model: LR|SVM|Linear")
		codecN    = flag.String("codec", "sketchml", "codec: sketchml|adam|adam32|zipml8|zipml16|key|keyquan|onebit|topk|topk-ef")
		workers   = flag.Int("workers", 4, "number of workers")
		epochs    = flag.Int("epochs", 3, "training epochs")
		batch     = flag.Float64("batch", 0.1, "mini-batch fraction of the training set")
		lr        = flag.Float64("lr", 0.1, "Adam learning rate")
		lambda    = flag.Float64("lambda", 0.01, "L2 regularization")
		seed      = flag.Int64("seed", 1, "random seed")
		useTCP    = flag.Bool("tcp", false, "exchange gradients over loopback TCP")
		buckets   = flag.Int("buckets", 256, "SketchML quantile buckets (q)")
		rows      = flag.Int("rows", 2, "MinMaxSketch rows (s)")
		groups    = flag.Int("groups", 8, "MinMaxSketch groups (r)")
		colsFrac  = flag.Float64("cols", 0.2, "MinMaxSketch columns as a fraction of nnz (t/d)")
		topology  = flag.String("topology", "driver", "aggregation topology: driver|ps|ssp")
		servers   = flag.Int("servers", 4, "parameter servers (topology=ps)")
		staleness = flag.Int("staleness", 2, "staleness bound (topology=ssp)")
		straggler = flag.Float64("straggler", 1, "slowdown factor of the last worker (topology=ssp)")
	)
	flag.Parse()

	ds, err := loadDataset(*data, *seed)
	if err != nil {
		fatal(err)
	}
	mdl, err := sketchml.ModelByName(*modelN)
	if err != nil {
		fatal(err)
	}
	c, err := buildCodec(*codecN, *buckets, *rows, *groups, *colsFrac)
	if err != nil {
		fatal(err)
	}

	train, test := ds.Split(0.75, *seed)
	fmt.Printf("dataset: %s (%d train / %d test, D=%d, avg nnz %.1f)\n",
		*data, train.N(), test.N(), ds.Dim, ds.AvgNNZ())
	fmt.Printf("model %s, codec %s, %d workers, batch %.0f%%\n\n",
		mdl.Name(), c.Name(), *workers, *batch*100)

	cfg := sketchml.TrainConfig{
		Model:         mdl,
		Codec:         c,
		Optimizer:     func(dim uint64) sketchml.Optimizer { return sketchml.NewAdam(*lr, dim) },
		Workers:       *workers,
		BatchFraction: *batch,
		Epochs:        *epochs,
		Lambda:        *lambda,
		Seed:          *seed,
		UseTCP:        *useTCP,
	}
	var res *sketchml.TrainResult
	switch *topology {
	case "driver":
		res, err = sketchml.Train(cfg, train, test)
	case "ps":
		res, err = sketchml.TrainPS(cfg, *servers, train, test)
	case "ssp":
		speeds := make([]float64, *workers)
		for w := range speeds {
			speeds[w] = 1
		}
		if *workers > 0 {
			speeds[*workers-1] = *straggler
		}
		res, err = sketchml.TrainSSP(cfg, *staleness, speeds, train, test)
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}
	if err != nil {
		fatal(err)
	}

	table := stats.NewTable("epoch", "test loss", "accuracy", "msg KB/round", "sim s", "wall s")
	for _, e := range res.Epochs {
		table.AddRow(e.Epoch, e.TestLoss, e.Accuracy,
			float64(e.UpBytes)/float64(e.Rounds)/1024,
			e.SimTime.Seconds(), e.WallTime.Seconds())
	}
	fmt.Println(table.String())
	fmt.Printf("final: loss %.4f, accuracy %.3f, avg %.1f KB/round upstream\n",
		res.FinalLoss, res.FinalAccuracy, res.AvgUpBytesPerRound()/1024)
}

func loadDataset(name string, seed int64) (*sketchml.Dataset, error) {
	switch name {
	case "kdd10":
		return sketchml.KDD10Like(seed), nil
	case "kdd12":
		return sketchml.KDD12Like(seed), nil
	case "ctr":
		return sketchml.CTRLike(seed), nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("open dataset: %w", err)
	}
	defer f.Close()
	return dataset.ParseLibSVM(f, 0)
}

func buildCodec(name string, buckets, rows, groups int, colsFrac float64) (sketchml.Codec, error) {
	opts := codec.DefaultOptions()
	opts.Buckets = buckets
	opts.Rows = rows
	opts.Groups = groups
	opts.ColsFraction = colsFrac
	switch name {
	case "sketchml":
		return codec.NewSketchML(opts)
	case "adam":
		return &codec.Raw{}, nil
	case "adam32":
		return &codec.Raw{Float32: true}, nil
	case "zipml8":
		return &codec.ZipML{Bits: 8}, nil
	case "zipml16":
		return &codec.ZipML{Bits: 16}, nil
	case "key":
		opts.Quantize, opts.MinMax = false, false
		return codec.NewSketchML(opts)
	case "keyquan":
		opts.MinMax = false
		return codec.NewSketchML(opts)
	case "onebit":
		return &codec.OneBit{}, nil
	case "topk":
		return &codec.TopK{Fraction: 0.1}, nil
	case "topk-ef":
		return codec.NewErrorFeedback(&codec.TopK{Fraction: 0.1}), nil
	}
	return nil, fmt.Errorf("unknown codec %q", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sketchml: %v\n", err)
	os.Exit(1)
}
