package main

import (
	"strings"
	"testing"

	"sketchml"
)

// Satellite of the service PR: a -metrics-out request with a topology that
// cannot produce a run report must be an explicit startup error, not a
// silently missing file at the end of the run.
func TestValidateFlagsMetricsOutTopology(t *testing.T) {
	cases := []struct {
		name             string
		serve, out, topo string
		gather           sketchml.Topology
		tcp              bool
		wantErr          bool
		wantErrSubstring string
	}{
		{name: "driver with report", out: "m.json", topo: "driver"},
		{name: "driver without report", topo: "driver"},
		{name: "ps without report", topo: "ps"},
		{name: "ssp without report", topo: "ssp"},
		{name: "ps with report", out: "m.json", topo: "ps",
			wantErr: true, wantErrSubstring: `-metrics-out requires -topology driver (got "ps")`},
		{name: "ssp with report", out: "m.json", topo: "ssp",
			wantErr: true, wantErrSubstring: `-metrics-out requires -topology driver (got "ssp")`},
		{name: "serve mode ignores topology", serve: "127.0.0.1:0", topo: "ssp"},
		{name: "serve mode rejects metrics-out", serve: "127.0.0.1:0", out: "m.json", topo: "driver",
			wantErr: true, wantErrSubstring: "-metrics-out cannot be combined with -serve"},
		{name: "tree gather on driver", topo: "driver", gather: sketchml.TopologyTree},
		{name: "ring gather on driver", topo: "driver", gather: sketchml.TopologyRing},
		{name: "tree gather on ps", topo: "ps", gather: sketchml.TopologyTree,
			wantErr: true, wantErrSubstring: `-gather tree requires -topology driver (got "ps")`},
		{name: "ring gather on ssp", topo: "ssp", gather: sketchml.TopologyRing,
			wantErr: true, wantErrSubstring: `-gather ring requires -topology driver (got "ssp")`},
		{name: "tree gather over tcp", topo: "driver", gather: sketchml.TopologyTree, tcp: true,
			wantErr: true, wantErrSubstring: "-gather tree requires the in-memory transport"},
		{name: "star gather over tcp", topo: "driver", tcp: true},
		{name: "serve mode ignores gather", serve: "127.0.0.1:0", topo: "driver", gather: sketchml.TopologyRing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.serve, tc.out, tc.topo, tc.gather, tc.tcp)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("validateFlags(%q, %q, %q, %v, %v) = nil, want error", tc.serve, tc.out, tc.topo, tc.gather, tc.tcp)
				}
				if !strings.Contains(err.Error(), tc.wantErrSubstring) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErrSubstring)
				}
				return
			}
			if err != nil {
				t.Fatalf("validateFlags(%q, %q, %q, %v, %v) = %v, want nil", tc.serve, tc.out, tc.topo, tc.gather, tc.tcp, err)
			}
		})
	}
}
