// Command datagen emits synthetic sparse datasets in LibSVM format: the
// scaled-down stand-ins for the paper's KDD10/KDD12/CTR datasets, or fully
// custom Zipf-sparse data.
//
// Usage:
//
//	datagen -preset kdd12 > kdd12.libsvm
//	datagen -n 10000 -dim 100000 -nnz 30 -task regression -o data.libsvm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sketchml/internal/dataset"
)

func main() {
	var (
		preset = flag.String("preset", "", "named preset: kdd10|kdd12|ctr (overrides other data flags)")
		n      = flag.Int("n", 10000, "number of instances")
		dim    = flag.Uint64("dim", 100000, "feature dimension")
		nnz    = flag.Int("nnz", 30, "average nonzeros per instance")
		zipf   = flag.Float64("zipf", 1.3, "Zipf skew exponent (>1)")
		task   = flag.String("task", "classification", "task: classification|regression")
		noise  = flag.Float64("noise", 0.5, "label noise std")
		binary = flag.Bool("binary", false, "binary (one-hot) feature values")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var d *dataset.Dataset
	switch *preset {
	case "kdd10":
		d = dataset.KDD10Like(*seed)
	case "kdd12":
		d = dataset.KDD12Like(*seed)
	case "ctr":
		d = dataset.CTRLike(*seed)
	case "":
		t := dataset.Classification
		if *task == "regression" {
			t = dataset.Regression
		} else if *task != "classification" {
			fatal(fmt.Errorf("unknown task %q", *task))
		}
		var err error
		d, err = dataset.Generate(dataset.SyntheticConfig{
			N: *n, Dim: *dim, AvgNNZ: *nnz, ZipfS: *zipf,
			Task: t, NoiseStd: *noise, BinaryVals: *binary, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := dataset.WriteLibSVM(w, d); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d instances, D=%d, avg nnz %.1f\n",
		d.N(), d.Dim, d.AvgNNZ())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
