// Command sketchbench regenerates the tables and figures of the SketchML
// paper's evaluation on the synthetic substrate.
//
// Usage:
//
//	sketchbench -list
//	sketchbench -run fig8a
//	sketchbench -run all -scale 0.5
//
// Each experiment prints the rows or series the corresponding table/figure
// reports; EXPERIMENTS.md records a full run alongside the paper's numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sketchml"
)

func main() {
	var (
		runID  = flag.String("run", "", "experiment id to run, or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.Float64("scale", 1.0, "dataset/epoch scale factor (1.0 = full)")
		seed   = flag.Int64("seed", 1, "random seed for data generation")
		asJSON = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	)
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("available experiments:")
		for _, id := range sketchml.ExperimentIDs() {
			fmt.Printf("  %-18s %s\n", id, sketchml.ExperimentTitle(id))
		}
		if *runID == "" && !*list {
			fmt.Println("\nrun one with: sketchbench -run <id>  (or -run all)")
		}
		return
	}

	cfg := sketchml.ExperimentConfig{Scale: *scale, Seed: *seed}
	ids := []string{*runID}
	if *runID == "all" {
		ids = sketchml.ExperimentIDs()
		// "tab3" aliases "fig13"; skip the duplicate in a full sweep.
		filtered := ids[:0]
		for _, id := range ids {
			if id != "tab3" {
				filtered = append(filtered, id)
			}
		}
		ids = filtered
	}
	failed := false
	enc := json.NewEncoder(os.Stdout)
	for _, id := range ids {
		start := time.Now()
		rep, err := sketchml.RunExperiment(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sketchbench: %v\n", err)
			failed = true
			continue
		}
		if *asJSON {
			if err := enc.Encode(jsonReport{
				ID:      rep.ID,
				Title:   rep.Title,
				Seconds: time.Since(start).Seconds(),
				Metrics: rep.Metrics,
				Text:    rep.Text,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "sketchbench: %v\n", err)
				failed = true
			}
			continue
		}
		fmt.Printf("== %s: %s (%.1fs) ==\n%s\n", rep.ID, rep.Title, time.Since(start).Seconds(), rep.Text)
	}
	if failed {
		os.Exit(1)
	}
}

// jsonReport is the machine-readable experiment record emitted by -json,
// one JSON object per line.
type jsonReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics"`
	Text    string             `json:"text"`
}
