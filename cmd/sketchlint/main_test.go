package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot resolves the module root from the test's working directory
// (cmd/sketchlint).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func gitAvailable(root string) bool {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = root
	return cmd.Run() == nil
}

// TestChangedDirsBadRef pins the fallback contract: an unresolvable ref
// must not silently analyze nothing — it reports ok=false with a reason
// that names the ref, and the caller widens to the full module.
func TestChangedDirsBadRef(t *testing.T) {
	root := repoRoot(t)
	if !gitAvailable(root) {
		t.Skip("git unavailable")
	}
	dirs, reason, ok := changedDirs(root, "no-such-ref-sketchlint-test")
	if ok {
		t.Fatalf("changedDirs succeeded on a bad ref (dirs=%v)", dirs)
	}
	if reason == "" {
		t.Fatal("fallback reason is empty; CI logs would not explain the slow run")
	}
	if !strings.Contains(reason, "no-such-ref-sketchlint-test") {
		t.Errorf("fallback reason %q does not name the bad ref", reason)
	}
}

// TestChangedDirsHead: a valid ref answers ok=true with no reason, and
// every returned directory is inside the module.
func TestChangedDirsHead(t *testing.T) {
	root := repoRoot(t)
	if !gitAvailable(root) {
		t.Skip("git unavailable")
	}
	dirs, reason, ok := changedDirs(root, "HEAD")
	if !ok {
		t.Fatalf("changedDirs failed on HEAD: %s", reason)
	}
	if reason != "" {
		t.Errorf("unexpected fallback reason on success: %q", reason)
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Errorf("changed dir %s escapes module root", d)
		}
	}
}
