// Command sketchlint runs the project's static-analysis suite
// (internal/lint) over the module: ten analyzers encoding SketchML's
// correctness invariants — the v1 serialization/determinism checks
// (unseeded-hash, float-equality, unchecked-error, wire-endianness,
// panic-in-library) and the v2 concurrency/wire-safety checks
// (pool-escape, lock-held-io, goroutine-join, waitgroup-misuse,
// unbounded-wire-alloc). See DESIGN.md ("Verification & static
// analysis") for what each one enforces and why.
//
// Usage:
//
//	sketchlint [-list] [-json] [-github] [-changed ref] [./... | dir ...]
//
// With no arguments (or "./...") every package in the module is checked.
// Individual directories may be named instead. Exit status is 1 when any
// finding is reported, 2 on a load or usage error.
//
// Output modes:
//
//	-json     emit findings as a JSON array (machine-readable, for CI)
//	-github   additionally emit ::error workflow annotations so findings
//	          surface inline on pull-request diffs
//	-changed  analyze only packages containing files changed relative to
//	          the given git ref (e.g. -changed origin/main); falls back
//	          to the full module when git is unavailable
//
// Findings can be suppressed — sparingly, with a justification — by a
// comment on the offending line or the line above:
//
//	//lint:allow panic-in-library unreachable: validated by caller
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"sketchml/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	github := flag.Bool("github", false, "also emit GitHub ::error workflow annotations")
	changed := flag.String("changed", "", "analyze only packages changed relative to this git ref")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sketchlint [-list] [-json] [-github] [-changed ref] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args(), *jsonOut, *github, *changed); err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

// finding is the JSON shape of one diagnostic. Paths are module-root
// relative so CI annotations resolve against the checkout.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, jsonOut, github bool, changedRef string) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}

	if changedRef != "" {
		if len(args) > 0 {
			return fmt.Errorf("-changed cannot be combined with package arguments")
		}
		dirs, ok := changedDirs(root, changedRef)
		if ok && len(dirs) == 0 {
			// No Go files changed: vacuously clean.
			if jsonOut {
				fmt.Println("[]")
			}
			return nil
		}
		if ok {
			args = dirs
		}
		// !ok (git missing or the ref unknown) falls through to the full
		// module — diff-awareness is an optimization, never a skip.
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, arg := range args {
		loaded, err := load(loader, root, arg)
		if err != nil {
			return err
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	diags := lint.Run(loader.Fset(), pkgs, lint.All())
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		findings = append(findings, finding{
			File:     name,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if github {
		for _, f := range findings {
			// https://docs.github.com/actions/reference/workflow-commands:
			// the message must be single-line; commas and colons in the
			// properties would break parsing but file paths contain neither.
			msg := strings.ReplaceAll(f.Message, "\n", " ")
			fmt.Printf("::error file=%s,line=%d,col=%d,title=sketchlint %s::%s\n",
				f.File, f.Line, f.Column, f.Analyzer, msg)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// changedDirs asks git which .go files differ from ref (committed or not)
// and maps them to their package directories relative to root. The second
// result is false when git cannot answer, in which case the caller should
// analyze the whole module.
func changedDirs(root, ref string) ([]string, bool) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--", "*.go")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sketchlint: git diff %s failed (%v); analyzing the full module\n", ref, err)
		return nil, false
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line == "" || !strings.HasSuffix(line, ".go") {
			continue
		}
		dir := filepath.Dir(line)
		if strings.Contains(line, "testdata"+string(filepath.Separator)) ||
			strings.Contains(line, "testdata/") {
			continue // fixtures are analyzed by their own tests, not the CLI
		}
		// A changed file may have been deleted; only analyze directories
		// that still exist in the worktree.
		abs := filepath.Join(root, dir)
		if info, err := os.Stat(abs); err != nil || !info.IsDir() {
			continue
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, abs)
		}
	}
	return dirs, true
}

// load resolves one command-line argument to packages: "./..." (or the
// module root) loads everything; anything else is a single directory.
func load(loader *lint.Loader, root, arg string) ([]*lint.Package, error) {
	if arg == "./..." || arg == "..." {
		return loader.LoadAll()
	}
	dir, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", arg, root)
	}
	path := loader.ModulePath
	if rel != "." {
		path = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
