// Command sketchlint runs the project's static-analysis suite
// (internal/lint) over the module: five analyzers encoding SketchML's
// correctness invariants — unseeded-hash, float-equality, unchecked-error,
// wire-endianness, and panic-in-library. See DESIGN.md ("Verification &
// static analysis") for what each one enforces and why.
//
// Usage:
//
//	sketchlint [-list] [./... | dir ...]
//
// With no arguments (or "./...") every package in the module is checked.
// Individual directories may be named instead. Exit status is 1 when any
// finding is reported, 2 on a load or usage error.
//
// Findings can be suppressed — sparingly, with a justification — by a
// comment on the offending line or the line above:
//
//	//lint:allow panic-in-library unreachable: validated by caller
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sketchml/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sketchlint [-list] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}

	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, arg := range args {
		loaded, err := load(loader, root, arg)
		if err != nil {
			return err
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	diags := lint.Run(loader.Fset(), pkgs, lint.All())
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// load resolves one command-line argument to packages: "./..." (or the
// module root) loads everything; anything else is a single directory.
func load(loader *lint.Loader, root, arg string) ([]*lint.Package, error) {
	if arg == "./..." || arg == "..." {
		return loader.LoadAll()
	}
	dir, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", arg, root)
	}
	path := loader.ModulePath
	if rel != "." {
		path = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
