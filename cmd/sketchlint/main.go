// Command sketchlint runs the project's static-analysis suite
// (internal/lint) over the module: eighteen analyzers encoding SketchML's
// correctness invariants — the v1 serialization/determinism checks
// (unseeded-hash, float-equality, unchecked-error, wire-endianness,
// panic-in-library), the v2 concurrency/wire-safety checks (pool-escape,
// lock-held-io, goroutine-join, waitgroup-misuse, unbounded-wire-alloc),
// the v3 interprocedural checks built on the module summary table
// (wire-taint, hotpath-alloc, wire-determinism, atomic-mix), and the v4
// concurrency-safety suite (lock-order, shared-write, chan-discipline,
// pragma). Full-module runs additionally cross-check every //lint:allow
// directive (stale-allow), and -oracle adds the compiler-oracle findings
// (escape-oracle, bce-hotpath) parsed from `go build -gcflags` output.
// See DESIGN.md ("Verification & static analysis", "Interprocedural
// analysis", and "Concurrency analysis & compiler oracle") for what each
// one enforces and why.
//
// Usage:
//
//	sketchlint [flags] [./... | dir ...]
//
// With no arguments (or "./...") every package in the module is checked.
// Individual directories may be named instead. Exit status is 1 when any
// unbaselined finding is reported (or, on full-module runs, when the
// baseline has stale entries), 2 on a load or usage error.
//
// Flags:
//
//	-json            emit a JSON report object (findings, per-analyzer
//	                 timings, cache statistics)
//	-github          additionally emit ::error workflow annotations so
//	                 findings surface inline on pull-request diffs
//	-changed ref     analyze only packages containing files changed
//	                 relative to the given git ref; falls back to the
//	                 full module when git cannot answer, and says why
//	-baseline file   committed suppression file; findings matching an
//	                 entry are reported as baselined, not failures, and
//	                 entries matching nothing fail full-module runs
//	-write-baseline  regenerate the -baseline file from current findings
//	                 (existing entries keep their documented reasons)
//	-summary-cache f persist interprocedural summaries between runs,
//	                 keyed by package content hash
//	-oracle          cross-check the model against the compiler: parse
//	                 escape-analysis (-m=2) and bounds-check (check_bce)
//	                 diagnostics and fail on hotpath model drift
//	-oracle-cache f  persist parsed compiler output between runs, keyed
//	                 by Go version and module content hash
//	-stats           print per-analyzer findings/timings, cache stats,
//	                 and (with -oracle) an "oracle: warm|cold" line
//
// Findings can be suppressed — sparingly, with a justification — by a
// comment on the offending line or the line above:
//
//	//lint:allow panic-in-library unreachable: validated by caller
//
// A directive whose analyzer no longer fires on the covered line is
// itself a finding (stale-allow) on full-module runs: suppressions must
// die with the code they excused.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sketchml/internal/lint"
)

func main() {
	var opts options
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit a JSON report object")
	flag.BoolVar(&opts.github, "github", false, "also emit GitHub ::error workflow annotations")
	flag.StringVar(&opts.changedRef, "changed", "", "analyze only packages changed relative to this git ref")
	flag.StringVar(&opts.baselinePath, "baseline", "", "baseline/suppression file (committed accepted findings)")
	flag.BoolVar(&opts.writeBaseline, "write-baseline", false, "regenerate the -baseline file from current findings")
	flag.StringVar(&opts.cachePath, "summary-cache", "", "summary cache file (content-hash keyed)")
	flag.BoolVar(&opts.oracle, "oracle", false, "cross-check the model against compiler escape/bounds diagnostics")
	flag.StringVar(&opts.oracleCachePath, "oracle-cache", "", "compiler-oracle cache file (Go version + module hash keyed)")
	flag.BoolVar(&opts.stats, "stats", false, "print per-analyzer timing and cache statistics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sketchlint [-list] [-json] [-github] [-changed ref] "+
			"[-baseline file [-write-baseline]] [-summary-cache file] [-oracle [-oracle-cache file]] "+
			"[-stats] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if opts.writeBaseline && opts.baselinePath == "" {
		fmt.Fprintln(os.Stderr, "sketchlint: -write-baseline requires -baseline")
		os.Exit(2)
	}
	if err := run(flag.Args(), opts); err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
}

type options struct {
	jsonOut         bool
	github          bool
	changedRef      string
	baselinePath    string
	writeBaseline   bool
	cachePath       string
	oracle          bool
	oracleCachePath string
	stats           bool
}

// finding is the JSON shape of one diagnostic. Paths are module-root
// relative so CI annotations resolve against the checkout.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json output shape.
type report struct {
	Findings  []finding            `json:"findings"`
	Baselined []finding            `json:"baselined,omitempty"`
	Stale     []lint.BaselineEntry `json:"stale_baseline,omitempty"`
	Analyzers []lint.AnalyzerStats `json:"analyzers"`
	Cache     cacheStats           `json:"summary_cache"`
	// Oracle is present when -oracle ran.
	Oracle *lint.OracleStats `json:"oracle,omitempty"`
	// Fallback is the reason -changed fell back to the full module, or
	// empty when it did not.
	Fallback string `json:"fallback,omitempty"`
}

type cacheStats struct {
	Hits   int   `json:"hits"`
	Misses int   `json:"misses"`
	Millis int64 `json:"millis"`
}

func run(args []string, opts options) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}

	fullModule := true
	var fallbackReason string
	if opts.changedRef != "" {
		if len(args) > 0 {
			return fmt.Errorf("-changed cannot be combined with package arguments")
		}
		dirs, reason, ok := changedDirs(root, opts.changedRef)
		if ok && len(dirs) == 0 {
			// No Go files changed: vacuously clean.
			if opts.jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(report{Findings: []finding{}})
			}
			return nil
		}
		if ok {
			args = dirs
			fullModule = false
		} else {
			// Git missing or the ref unknown: fall back to the full
			// module — diff-awareness is an optimization, never a skip —
			// and carry the reason into the output so CI logs show why
			// the run got slower.
			fallbackReason = reason
			fmt.Fprintf(os.Stderr, "sketchlint: %s; analyzing the full module\n", reason)
		}
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		if arg != "./..." && arg != "..." {
			fullModule = false
		}
	}

	var pkgs []*lint.Package
	seen := make(map[string]bool)
	for _, arg := range args {
		loaded, err := load(loader, root, arg)
		if err != nil {
			return err
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	// Summaries cover everything the loader pulled in — the analyzed
	// packages plus, on partial runs, their unchanged module-internal
	// dependencies — so interprocedural facts stay as precise as a
	// full-module run.
	sumPkgs := loader.Loaded()

	cache := lint.OpenSummaryCache(opts.cachePath)
	cacheStart := time.Now()
	cached := cache.Valid(sumPkgs)
	cacheMillis := time.Since(cacheStart).Milliseconds()

	diags, stats := lint.RunWithStats(loader.Fset(), pkgs, lint.All(), lint.RunOptions{
		CachedSummaries: cached,
		SummaryPackages: sumPkgs,
		// Only a full-module run proves a suppression dead: on a partial
		// run an unfired directive may cover a package not analyzed.
		CheckStaleAllows: fullModule,
	})
	cache.Update(stats.Mod, sumPkgs, stats.FreshPackages)
	if err := cache.Save(); err != nil {
		fmt.Fprintf(os.Stderr, "sketchlint: saving summary cache: %v\n", err)
	}

	var oracleStats *lint.OracleStats
	if opts.oracle {
		odiags, ostats, err := lint.RunOracle(root, loader.ModulePath, loader.Fset(),
			loader.Loaded(), stats.Mod, lint.OracleOptions{CachePath: opts.oracleCachePath})
		if err != nil {
			return err
		}
		oracleStats = &ostats
		diags = mergeDiags(diags, odiags)
	}

	baseline, err := lint.LoadBaseline(opts.baselinePath)
	if err != nil {
		return err
	}
	if opts.writeBaseline {
		n, err := lint.WriteBaseline(opts.baselinePath, root, diags, baseline)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sketchlint: wrote %d entries to %s\n", n, opts.baselinePath)
		return nil
	}
	active, baselined, stale := baseline.Filter(root, diags)
	if !fullModule {
		// A partial run sees a subset of findings, so absence proves
		// nothing about the rest of the baseline.
		stale = nil
	}

	rep := report{
		Findings:  toFindings(root, active),
		Baselined: toFindings(root, baselined),
		Stale:     stale,
		Analyzers: stats.Analyzers,
		Cache:     cacheStats{Hits: cache.Hits, Misses: cache.Misses, Millis: cacheMillis + stats.SummaryMillis},
		Oracle:    oracleStats,
		Fallback:  fallbackReason,
	}

	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
		for _, e := range rep.Stale {
			fmt.Printf("%s: stale baseline entry for %s: %q matches no finding; remove it\n",
				e.File, e.Analyzer, e.Message)
		}
	}
	if opts.stats {
		printStats(rep)
	}
	if opts.github {
		for _, f := range rep.Findings {
			// https://docs.github.com/actions/reference/workflow-commands:
			// the message must be single-line; commas and colons in the
			// properties would break parsing but file paths contain neither.
			msg := strings.ReplaceAll(f.Message, "\n", " ")
			fmt.Printf("::error file=%s,line=%d,col=%d,title=sketchlint %s::%s\n",
				f.File, f.Line, f.Column, f.Analyzer, msg)
		}
		for _, e := range rep.Stale {
			fmt.Printf("::error file=%s,title=sketchlint stale baseline::baseline entry for %s matches no finding; remove it\n",
				e.File, e.Analyzer)
		}
	}
	if len(rep.Findings) > 0 || len(rep.Stale) > 0 {
		os.Exit(1)
	}
	return nil
}

func toFindings(root string, diags []lint.Diagnostic) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:     lint.RelPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// printStats renders the per-analyzer table `make lint-stats` shows.
func printStats(rep report) {
	w := os.Stderr
	fmt.Fprintf(w, "%-22s %9s %9s\n", "analyzer", "findings", "millis")
	var totalFindings int
	var totalMillis int64
	for _, a := range rep.Analyzers {
		fmt.Fprintf(w, "%-22s %9d %9d\n", a.Name, a.Findings, a.Millis)
		totalFindings += a.Findings
		totalMillis += a.Millis
	}
	fmt.Fprintf(w, "%-22s %9d %9d\n", "total", totalFindings, totalMillis)
	fmt.Fprintf(w, "summary cache: %d hits, %d misses, %d ms (build+hash)\n",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Millis)
	if rep.Oracle != nil {
		state := "cold"
		if rep.Oracle.CacheHit {
			state = "warm"
		}
		fmt.Fprintf(w, "oracle: %s, %d escape sites, %d bounds sites, %d ms build (%s)\n",
			state, rep.Oracle.EscapeSites, rep.Oracle.BoundsSites,
			rep.Oracle.BuildMillis, rep.Oracle.GoVersion)
	}
	if n := len(rep.Baselined); n > 0 {
		fmt.Fprintf(w, "baselined findings: %d\n", n)
	}
}

// mergeDiags folds the oracle findings into the analyzer diagnostics,
// restoring the suite's position order.
func mergeDiags(diags, extra []lint.Diagnostic) []lint.Diagnostic {
	diags = append(diags, extra...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// changedDirs asks git which .go files differ from ref (committed or not)
// and maps them to their package directories relative to root. ok is false
// when git cannot answer — reason then says why, so the caller can surface
// it — and the caller analyzes the whole module.
func changedDirs(root, ref string) (dirs []string, reason string, ok bool) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--", "*.go")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		detail := strings.TrimSpace(errDetail(err))
		if detail != "" {
			return nil, fmt.Sprintf("git diff %s failed: %s", ref, detail), false
		}
		return nil, fmt.Sprintf("git diff %s failed: %v", ref, err), false
	}
	seen := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line == "" || !strings.HasSuffix(line, ".go") {
			continue
		}
		dir := filepath.Dir(line)
		if strings.Contains(line, "testdata"+string(filepath.Separator)) ||
			strings.Contains(line, "testdata/") {
			continue // fixtures are analyzed by their own tests, not the CLI
		}
		// A changed file may have been deleted; only analyze directories
		// that still exist in the worktree.
		abs := filepath.Join(root, dir)
		if info, err := os.Stat(abs); err != nil || !info.IsDir() {
			continue
		}
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, abs)
		}
	}
	return dirs, "", true
}

// errDetail extracts git's stderr from an exec error, first line only.
func errDetail(err error) string {
	if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
		msg := string(ee.Stderr)
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		return msg
	}
	return ""
}

// load resolves one command-line argument to packages: "./..." (or the
// module root) loads everything; anything else is a single directory.
func load(loader *lint.Loader, root, arg string) ([]*lint.Package, error) {
	if arg == "./..." || arg == "..." {
		return loader.LoadAll()
	}
	dir, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("%s is outside module root %s", arg, root)
	}
	path := loader.ModulePath
	if rel != "." {
		path = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
