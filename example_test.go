package sketchml_test

import (
	"fmt"

	"sketchml"
)

// ExampleNewCompressor demonstrates the core flow: build a sparse gradient,
// compress it with SketchML, and decode it back with exact keys and
// sign-preserving values.
func ExampleNewCompressor() {
	grad := sketchml.GradientFromMap(1_000_000, map[uint64]float64{
		42:      0.5,
		1_000:   -0.25,
		999_999: 0.125,
	})
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		panic(err)
	}
	msg, err := comp.Encode(grad)
	if err != nil {
		panic(err)
	}
	back, err := comp.Decode(msg)
	if err != nil {
		panic(err)
	}
	fmt.Println("keys:", back.Keys)
	fmt.Println("signs preserved:",
		back.Values[0] >= 0, back.Values[1] <= 0, back.Values[2] >= 0)
	// Output:
	// keys: [42 1000 999999]
	// signs preserved: true true true
}

// ExampleTrain runs two epochs of compressed distributed logistic
// regression on a synthetic dataset.
func ExampleTrain() {
	full := sketchml.KDD10Like(1)
	train, test := full.Split(0.75, 1)
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := sketchml.Train(sketchml.TrainConfig{
		Model:   sketchml.LogisticRegression(),
		Codec:   comp,
		Workers: 4,
		Epochs:  2,
		Lambda:  0.01,
		Seed:    1,
	}, train, test)
	if err != nil {
		panic(err)
	}
	fmt.Println("epochs:", len(res.Epochs))
	fmt.Println("learned something:", res.FinalAccuracy > 0.7)
	// Output:
	// epochs: 2
	// learned something: true
}

// ExampleRawCodec contrasts message sizes: the uncompressed baseline versus
// SketchML on the same gradient.
func ExampleRawCodec() {
	grad := sketchml.GradientFromMap(100_000, func() map[uint64]float64 {
		m := map[uint64]float64{}
		for k := uint64(0); k < 5_000; k++ {
			v := 0.001 * float64(k%17+1)
			if k%2 == 0 {
				v = -v
			}
			m[k*19] = v
		}
		return m
	}())
	raw, err := (&sketchml.RawCodec{}).Encode(grad)
	if err != nil {
		panic(err)
	}
	comp, err := sketchml.NewCompressor(sketchml.DefaultOptions())
	if err != nil {
		panic(err)
	}
	msg, err := comp.Encode(grad)
	if err != nil {
		panic(err)
	}
	fmt.Println("sketchml is smaller:", len(msg) < len(raw)/3)
	// Output:
	// sketchml is smaller: true
}
