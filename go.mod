module sketchml

go 1.22
